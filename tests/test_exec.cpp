// Executors, coroutine tasks, futures.
#include <gtest/gtest.h>

#include <atomic>

#include "exec/future.hpp"
#include "exec/sim_executor.hpp"
#include "exec/task.hpp"
#include "exec/thread_executor.hpp"

namespace flux {
namespace {

TEST(SimExecutor, RunsInTimeThenFifoOrder) {
  SimExecutor ex;
  std::vector<int> order;
  ex.post_at(TimePoint{30}, [&] { order.push_back(3); });
  ex.post_at(TimePoint{10}, [&] { order.push_back(1); });
  ex.post_at(TimePoint{10}, [&] { order.push_back(2); });  // FIFO tie-break
  ex.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ex.now(), TimePoint{30});
}

TEST(SimExecutor, PostAtPastClampsToNow) {
  SimExecutor ex;
  ex.post_at(TimePoint{100}, [] {});
  ex.run();
  TimePoint seen{};
  ex.post_at(TimePoint{5}, [&] { seen = ex.now(); });
  ex.run();
  EXPECT_EQ(seen, TimePoint{100});
}

TEST(SimExecutor, RunUntilAdvancesClockToDeadline) {
  SimExecutor ex;
  int fired = 0;
  ex.post_at(TimePoint{50}, [&] { ++fired; });
  ex.post_at(TimePoint{150}, [&] { ++fired; });
  ex.run_until(TimePoint{100});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ex.now(), TimePoint{100});
  ex.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimExecutor, DaemonEventsDontKeepRunAlive) {
  SimExecutor ex;
  int daemon_fired = 0;
  int normal_fired = 0;
  // A self-rearming daemon (like the hb module's tick).
  std::function<void()> tick = [&] {
    ++daemon_fired;
    ex.post_daemon_after(Duration{10}, tick);
  };
  ex.post_daemon_after(Duration{10}, tick);
  ex.post_at(TimePoint{35}, [&] { ++normal_fired; });
  ex.run();
  EXPECT_EQ(normal_fired, 1);
  EXPECT_EQ(daemon_fired, 3);  // ticks at 10, 20, 30 ran before t=35
  EXPECT_TRUE(ex.idle());
  ex.run_for(Duration{20});  // run_until executes daemons
  EXPECT_EQ(daemon_fired, 5);
}

TEST(Task, ValueChainPropagates) {
  SimExecutor ex;
  auto inner = [](Executor& e) -> Task<int> {
    co_await sleep_for(e, Duration{5});
    co_return 21;
  };
  auto outer = [&](Executor& e) -> Task<int> {
    const int a = co_await inner(e);
    const int b = co_await inner(e);
    co_return a + b;
  };
  int result = 0;
  co_spawn(ex, [](Task<int> t, int* out) -> Task<void> {
    *out = co_await std::move(t);
  }(outer(ex), &result));
  ex.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(ex.now(), TimePoint{10});
}

TEST(Task, ExceptionsPropagateThroughAwait) {
  SimExecutor ex;
  auto thrower = []() -> Task<int> {
    throw FluxException(Error(errc::noent, "gone"));
    co_return 0;  // unreachable
  };
  bool caught = false;
  co_spawn(ex, [](Task<int> t, bool* c) -> Task<void> {
    try {
      (void)co_await std::move(t);
    } catch (const FluxException& e) {
      *c = (e.error().code == errc::noent);
    }
  }(thrower(), &caught));
  ex.run();
  EXPECT_TRUE(caught);
}

TEST(Task, DetachedExceptionIsSwallowedAndLogged) {
  SimExecutor ex;
  co_spawn(ex, []() -> Task<void> {
    throw std::runtime_error("boom");
    co_return;
  }(), "exploder");
  EXPECT_NO_THROW(ex.run());
}

TEST(Future, ResolveBeforeAwait) {
  SimExecutor ex;
  Promise<int> p(ex);
  p.set_value(5);
  int got = 0;
  co_spawn(ex, [](Future<int> f, int* out) -> Task<void> {
    *out = co_await f;
  }(p.future(), &got));
  ex.run();
  EXPECT_EQ(got, 5);
}

TEST(Future, ResolveAfterAwait) {
  SimExecutor ex;
  Promise<int> p(ex);
  int got = 0;
  co_spawn(ex, [](Future<int> f, int* out) -> Task<void> {
    *out = co_await f;
  }(p.future(), &got));
  ex.post_at(TimePoint{10}, [p] { p.set_value(6); });
  ex.run();
  EXPECT_EQ(got, 6);
}

TEST(Future, MultipleAwaitersAllResume) {
  SimExecutor ex;
  Promise<int> p(ex);
  int sum = 0;
  for (int i = 0; i < 5; ++i) {
    co_spawn(ex, [](Future<int> f, int* out) -> Task<void> {
      *out += co_await f;
    }(p.future(), &sum));
  }
  ex.post_at(TimePoint{1}, [p] { p.set_value(10); });
  ex.run();
  EXPECT_EQ(sum, 50);
}

TEST(Future, FirstSettleWins) {
  SimExecutor ex;
  Promise<int> p(ex);
  p.set_value(1);
  p.set_value(2);
  p.set_error(Error(errc::timeout));
  int got = 0;
  co_spawn(ex, [](Future<int> f, int* out) -> Task<void> {
    *out = co_await f;
  }(p.future(), &got));
  ex.run();
  EXPECT_EQ(got, 1);
}

TEST(Future, ErrorThrowsOnAwait) {
  SimExecutor ex;
  Promise<int> p(ex);
  p.set_error(Error(errc::timeout, "deadline"));
  Errc seen = errc::ok;
  co_spawn(ex, [](Future<int> f, Errc* out) -> Task<void> {
    try {
      (void)co_await f;
    } catch (const FluxException& e) {
      *out = e.error().code;
    }
  }(p.future(), &seen));
  ex.run();
  EXPECT_EQ(seen, errc::timeout);
}

TEST(ThreadExecutor, PostAndTimersRun) {
  ThreadExecutor ex;
  ex.start();
  std::atomic<int> count{0};
  Promise<int> p(ex);
  ex.post([&] { ++count; });
  ex.post_after(std::chrono::milliseconds(5), [&, p] {
    ++count;
    p.set_value(count.load());
  });
  EXPECT_EQ(p.future().wait(), 2);
  ex.stop();
}

TEST(ThreadExecutor, BlockingWaitFromForeignThread) {
  ThreadExecutor ex;
  ex.start();
  Promise<std::string> p(ex);
  ex.post_after(std::chrono::milliseconds(1), [p] { p.set_value("done"); });
  EXPECT_EQ(p.future().wait(), "done");
  ex.stop();
}

TEST(ThreadExecutor, InLoopThreadDetection) {
  ThreadExecutor ex;
  ex.start();
  Promise<bool> p(ex);
  ex.post([&ex, p] { p.set_value(ex.in_loop_thread()); });
  EXPECT_TRUE(p.future().wait());
  EXPECT_FALSE(ex.in_loop_thread());
  ex.stop();
}

}  // namespace
}  // namespace flux
