// Fault injection: dead-broker detection, tree self-healing, and service
// continuity (paper §IV-A: planes "can self-heal when interior nodes fail").
#include <gtest/gtest.h>

#include "kvs/kvs_module.hpp"
#include "modules/live.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

SessionConfig failure_config(std::uint32_t size) {
  SessionConfig cfg = SimSession::default_config(size);
  cfg.module_config = Json::object(
      {{"hb", Json::object({{"period_us", 100}})},
       {"live", Json::object({{"missed_max", 3}})}});
  return cfg;
}

TEST(Failure, InteriorDeathHealsTopologyEverywhere) {
  SimSession s(failure_config(15));  // rank 1 is interior: children 3,4
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(1);
  s.settle(std::chrono::milliseconds(2));
  // Every live broker's topology replica healed: 3 and 4 under root now.
  for (NodeId r : {0u, 2u, 3u, 4u, 7u, 14u}) {
    const Topology& topo = s.session().broker(r).topology();
    EXPECT_EQ(*topo.parent(3), 0u) << "rank " << r;
    EXPECT_EQ(*topo.parent(4), 0u) << "rank " << r;
  }
}

TEST(Failure, KvsServesAfterInteriorDeath) {
  SimSession s(failure_config(15));
  auto writer = s.attach(0);
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("pre.fail", "survives");
    co_await kvs.commit();
  }(writer.get()));

  s.session().fail(1);
  s.settle(std::chrono::milliseconds(2));  // detection + healing

  // A client below the dead broker (rank 3's subtree hangs off rank 1
  // originally) can still read AND write through the healed tree.
  auto survivor = s.attach(7);  // old path: 7 -> 3 -> 1(dead) -> 0
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    Json v = co_await kvs.get("pre.fail");
    if (v != Json("survives"))
      throw FluxException(Error(Errc::Proto, "lost committed data"));
    co_await kvs.put("post.fail", "written after heal");
    co_await kvs.commit();
    Json w = co_await kvs.get("post.fail");
    if (w != Json("written after heal"))
      throw FluxException(Error(Errc::Proto, "post-heal write failed"));
  }(survivor.get()));
}

TEST(Failure, EventsReachOrphansAfterHeal) {
  SimSession s(failure_config(15));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(2);  // children 5, 6
  s.settle(std::chrono::milliseconds(2));
  auto sub = s.attach(6);
  auto pub = s.attach(0);
  int got = 0;
  sub->subscribe("heal.test", [&](const Message&) { ++got; });
  pub->publish("heal.test");
  s.ex().run();
  EXPECT_EQ(got, 1);
}

TEST(Failure, ResvcTakesDeadNodeOutOfThePool) {
  SimSession s(failure_config(8));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(5);
  s.settle(std::chrono::milliseconds(3));
  auto h = s.attach(0);
  Message st = s.run(h->rpc_check("resvc.status"));
  EXPECT_EQ(st.payload.get_int("down"), 1);
  EXPECT_EQ(st.payload.get_int("free"), 7);
  // The KVS enumeration reflects the death.
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json n5 = co_await kvs.get("resource.nodes.n5");
    if (n5.get_string("state") != "down")
      throw FluxException(Error(Errc::Proto, "node not marked down"));
  }(h.get()));
}

TEST(Failure, LeafDeathIsDetectedButHarmless) {
  SimSession s(failure_config(8));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(7);  // leaf
  s.settle(std::chrono::milliseconds(2));
  auto* live =
      dynamic_cast<modules::Live*>(s.session().broker(3).find_module("live"));
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(live->dead().contains(7));
  // The rest of the session is fully functional.
  auto h = s.attach(6);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("after.leaf.death", 1);
    co_await kvs.commit();
    co_await hd->barrier("leafdeath", 1);
  }(h.get()));
}

TEST(Failure, MultipleDeaths) {
  SimSession s(failure_config(31));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(5);
  s.settle(std::chrono::milliseconds(2));
  s.session().fail(2);
  s.settle(std::chrono::milliseconds(2));
  // 5's children (11, 12) first moved under 2; when 2 died they... were
  // re-homed under 2's parent along with 2's other children.
  auto h = s.attach(11);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("multi.death", "ok");
    co_await kvs.commit();
    Json v = co_await kvs.get("multi.death");
    if (v != Json("ok")) throw FluxException(Error(Errc::Proto, "broken"));
  }(h.get()));
}

TEST(Failure, PendingRpcOnFailedBrokerSettles) {
  SimSession s(failure_config(8));
  auto h = s.attach(3);
  Errc seen = Errc::Ok;
  co_spawn(s.ex(), [](Handle* hd, Errc* out) -> Task<void> {
    try {
      // A barrier that will never complete while the broker dies.
      co_await hd->barrier("doomed", 999);
    } catch (const FluxException& e) {
      *out = e.error().code;
    }
  }(h.get(), &seen), "doomed");
  s.settle(std::chrono::microseconds(500));
  s.session().fail(3);
  s.ex().run();
  EXPECT_EQ(seen, Errc::HostDown);
}

}  // namespace
}  // namespace flux
