// Fault injection: dead-broker detection, tree self-healing, and service
// continuity (paper §IV-A: planes "can self-heal when interior nodes fail").
#include <gtest/gtest.h>

#include "kvs/kvs_module.hpp"
#include "modules/live.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

SessionConfig failure_config(std::uint32_t size) {
  SessionConfig cfg = SimSession::default_config(size);
  cfg.module_config = Json::object(
      {{"hb", Json::object({{"period_us", 100}})},
       {"live", Json::object({{"missed_max", 3}})}});
  return cfg;
}

TEST(Failure, InteriorDeathHealsTopologyEverywhere) {
  SimSession s(failure_config(15));  // rank 1 is interior: children 3,4
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(1);
  s.settle(std::chrono::milliseconds(2));
  // Every live broker's topology replica healed: 3 and 4 under root now.
  for (NodeId r : {0u, 2u, 3u, 4u, 7u, 14u}) {
    const Topology& topo = s.session().broker(r).topology();
    EXPECT_EQ(*topo.parent(3), 0u) << "rank " << r;
    EXPECT_EQ(*topo.parent(4), 0u) << "rank " << r;
  }
}

TEST(Failure, KvsServesAfterInteriorDeath) {
  SimSession s(failure_config(15));
  auto writer = s.attach(0);
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("pre.fail", "survives");
    co_await kvs.commit();
  }(writer.get()));

  s.session().fail(1);
  s.settle(std::chrono::milliseconds(2));  // detection + healing

  // A client below the dead broker (rank 3's subtree hangs off rank 1
  // originally) can still read AND write through the healed tree.
  auto survivor = s.attach(7);  // old path: 7 -> 3 -> 1(dead) -> 0
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    Json v = co_await kvs.get("pre.fail");
    if (v != Json("survives"))
      throw FluxException(Error(errc::proto, "lost committed data"));
    co_await kvs.put("post.fail", "written after heal");
    co_await kvs.commit();
    Json w = co_await kvs.get("post.fail");
    if (w != Json("written after heal"))
      throw FluxException(Error(errc::proto, "post-heal write failed"));
  }(survivor.get()));
}

TEST(Failure, EventsReachOrphansAfterHeal) {
  SimSession s(failure_config(15));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(2);  // children 5, 6
  s.settle(std::chrono::milliseconds(2));
  auto sub = s.attach(6);
  auto pub = s.attach(0);
  int got = 0;
  Subscription watch =
      sub->subscribe("heal.test", [&](const Message&) { ++got; });
  pub->publish("heal.test");
  s.ex().run();
  EXPECT_EQ(got, 1);
}

TEST(Failure, ResvcTakesDeadNodeOutOfThePool) {
  SimSession s(failure_config(8));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(5);
  s.settle(std::chrono::milliseconds(3));
  auto h = s.attach(0);
  Message st = s.run(h->request("resvc.status").call());
  EXPECT_EQ(st.payload().get_int("down"), 1);
  EXPECT_EQ(st.payload().get_int("free"), 7);
  // The KVS enumeration reflects the death.
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json n5 = co_await kvs.get("resource.nodes.n5");
    if (n5.get_string("state") != "down")
      throw FluxException(Error(errc::proto, "node not marked down"));
  }(h.get()));
}

TEST(Failure, LeafDeathIsDetectedButHarmless) {
  SimSession s(failure_config(8));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(7);  // leaf
  s.settle(std::chrono::milliseconds(2));
  auto* live =
      dynamic_cast<modules::Live*>(s.session().broker(3).find_module("live"));
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(live->dead().contains(7));
  // The rest of the session is fully functional.
  auto h = s.attach(6);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("after.leaf.death", 1);
    co_await kvs.commit();
    co_await hd->barrier("leafdeath", 1);
  }(h.get()));
}

TEST(Failure, MultipleDeaths) {
  SimSession s(failure_config(31));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(5);
  s.settle(std::chrono::milliseconds(2));
  s.session().fail(2);
  s.settle(std::chrono::milliseconds(2));
  // 5's children (11, 12) first moved under 2; when 2 died they... were
  // re-homed under 2's parent along with 2's other children.
  auto h = s.attach(11);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("multi.death", "ok");
    co_await kvs.commit();
    Json v = co_await kvs.get("multi.death");
    if (v != Json("ok")) throw FluxException(Error(errc::proto, "broken"));
  }(h.get()));
}

TEST(Failure, PendingRpcOnFailedBrokerSettles) {
  SimSession s(failure_config(8));
  auto h = s.attach(3);
  Errc seen = errc::ok;
  co_spawn(s.ex(), [](Handle* hd, Errc* out) -> Task<void> {
    try {
      // A barrier that will never complete while the broker dies.
      co_await hd->barrier("doomed", 999);
    } catch (const FluxException& e) {
      *out = e.error().code;
    }
  }(h.get(), &seen), "doomed");
  s.settle(std::chrono::microseconds(500));
  s.session().fail(3);
  s.ex().run();
  EXPECT_EQ(seen, errc::host_down);
}


// ---------------------------------------------------------------------------
// Sharded KVS masters under failure (paper §VII)
// ---------------------------------------------------------------------------

SessionConfig sharded_failure_config(std::uint32_t size, std::uint32_t shards) {
  SessionConfig cfg = failure_config(size);
  Json mc = cfg.module_config;
  mc["kvs"] = Json::object({{"shards", static_cast<std::int64_t>(shards)}});
  cfg.module_config = std::move(mc);
  return cfg;
}

TEST(Failure, ShardMasterDeathHealsAndOtherShardsKeepServing) {
  // size 8, shards 4: masters at ranks 0, 2, 4, 6. Rank 2 is interior
  // (children 5, 6) and masters a non-root shard.
  SimSession s(sharded_failure_config(8, 4));
  auto h = s.attach(7);
  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(7).find_module("kvs"));
  ASSERT_NE(leaf, nullptr);
  const ShardMap& map = leaf->shard_map();
  const std::uint32_t dead_shard = *map.shard_of_master(2);

  // Find keys per shard, commit one to every shard pre-death.
  std::vector<std::string> key_on(4);
  for (int i = 0; key_on[0].empty() || key_on[1].empty() ||
                  key_on[2].empty() || key_on[3].empty();
       ++i)
    key_on[map.shard_of("d" + std::to_string(i))] = "d" + std::to_string(i);
  s.run([](Handle* hd, const std::vector<std::string>* keys) -> Task<void> {
    KvsClient kvs(*hd);
    for (const std::string& k : *keys) co_await kvs.put(k + ".v", k);
    co_await kvs.commit();
  }(h.get(), &key_on));

  s.session().fail(2);
  s.settle(std::chrono::milliseconds(2));  // detection + heal + live.down

  // Topology healed around the dead broker everywhere.
  for (NodeId r : {0u, 1u, 5u, 6u, 7u}) {
    const Topology& topo = s.session().broker(r).topology();
    EXPECT_EQ(*topo.parent(5), 0u) << "rank " << r;
    EXPECT_EQ(*topo.parent(6), 0u) << "rank " << r;
  }

  s.run([](Handle* hd, const std::vector<std::string>* keys,
           std::uint32_t dead) -> Task<void> {
    KvsClient kvs(*hd);
    for (std::uint32_t sh = 0; sh < 4; ++sh) {
      const std::string key = (*keys)[sh] + ".v";
      if (sh == dead) {
        // The dead shard's data is gone; reads fail fast with EHOSTDOWN.
        try {
          (void)co_await kvs.get(key);
          throw FluxException(Error(errc::proto, "read of dead shard passed"));
        } catch (const FluxException& e) {
          if (e.error().code != errc::host_down) throw;
        }
      } else {
        // Live shards keep serving reads...
        Json v = co_await kvs.get(key);
        if (v != Json((*keys)[sh]))
          throw FluxException(Error(errc::proto, "live shard lost data"));
        // ...and writes.
        co_await kvs.put(key, "rewritten");
        auto r = co_await kvs.commit();
        if (r.vv.size() != 4)
          throw FluxException(Error(errc::proto, "no vv after death"));
        Json w = co_await kvs.get(key);
        if (w != Json("rewritten"))
          throw FluxException(Error(errc::proto, "post-death write lost"));
      }
    }
    // Writes destined to the dead shard are refused, not hung.
    try {
      co_await kvs.put((*keys)[dead] + ".w", 1);
      co_await kvs.commit();
      throw FluxException(Error(errc::proto, "write to dead shard passed"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::host_down) throw;
    }
  }(h.get(), &key_on, dead_shard));
}

TEST(Failure, ShardMasterDeathSettlesInFlightFence) {
  SimSession s(sharded_failure_config(8, 4));
  s.settle(std::chrono::milliseconds(1));
  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(7).find_module("kvs"));
  const ShardMap& map = leaf->shard_map();
  // A key owned by rank 2's shard.
  std::string key;
  for (int i = 0;; ++i) {
    key = "f" + std::to_string(i);
    if (map.master_rank(map.shard_of(key)) == 2) break;
  }

  auto h = s.attach(7);
  std::optional<Errc> seen;
  int done = 0;
  co_spawn(s.ex(),
           [](Handle* hd, std::string k, std::optional<Errc>* out,
              int* d) -> Task<void> {
             KvsClient kvs(*hd);
             co_await kvs.put(k + ".v", 1);
             try {
               // nprocs=2 with one participant: still pending at death.
               co_await kvs.fence("doomed", 2);
             } catch (const FluxException& e) {
               *out = e.error().code;
             }
             ++*d;
           }(h.get(), key, &seen, &done),
           "doomed-fencer");
  s.settle(std::chrono::milliseconds(1));  // contribution reaches masters
  EXPECT_EQ(done, 0);                      // fence pending (1 of 2)

  s.session().fail(2);
  s.settle(std::chrono::milliseconds(3));

  // The second participant arrives after the death; the fence settles with
  // an error at the writer whose tuples went to the dead shard.
  auto h2 = s.attach(5);
  int done2 = 0;
  co_spawn(s.ex(),
           [](Handle* hd, int* d) -> Task<void> {
             KvsClient kvs(*hd);
             try {
               co_await kvs.fence("doomed", 2);
             } catch (const FluxException&) {
             }
             ++*d;
           }(h2.get(), &done2),
           "second-fencer");
  s.settle(std::chrono::milliseconds(3));
  EXPECT_EQ(done, 1) << "fence waiter hung after shard master death";
  EXPECT_EQ(done2, 1);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, errc::host_down);
}

TEST(Failure, DirectRpcToDeadBrokerSettles) {
  // In-flight direct RPCs (the sharded overlay edges) settle with EHOSTDOWN
  // when the target dies instead of hanging the coroutine.
  SimSession s(sharded_failure_config(8, 4));
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(2);
  s.settle(std::chrono::milliseconds(3));
  // Faulting an object of the dead shard from a rank whose per-shard parent
  // IS the dead master exercises the settled-error path end to end.
  auto h = s.attach(6);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    try {
      (void)co_await kvs.get("anything.here");  // any key: walk needs roots
      co_return;  // NoEnt/HostDown both acceptable shapes below
    } catch (const FluxException& e) {
      if (e.error().code != errc::host_down && e.error().code != errc::noent)
        throw;
    }
  }(h.get()));
}

TEST(Failure, WatchRefiresAcrossShardMasterFailover) {
  // A KvsClient::watch survives its shard master dying: the hb-driven
  // failover promotes a successor, the successor's "kvs.setroot.<s>"
  // announcement re-fires the watch (value lost: empty-root bootstrap), and
  // writes through the new master fire it again with the new value.
  SessionConfig cfg = sharded_failure_config(8, 2);
  Json mc = cfg.module_config;
  mc["kvs"] = Json::object({{"shards", 2}, {"failover", true}});
  cfg.module_config = std::move(mc);
  cfg.rpc = RetryPolicy{std::chrono::milliseconds(2), 3,
                        std::chrono::microseconds(100)};
  SimSession s(cfg);

  auto* kvs0 =
      dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
  ASSERT_NE(kvs0, nullptr);
  const ShardMap& map = kvs0->shard_map();
  // The shard mastered off-root, and a key living on it.
  std::uint32_t shard = 0;
  for (std::uint32_t sh = 0; sh < 2; ++sh)
    if (map.master_rank(sh) != 0) shard = sh;
  const NodeId master = map.master_rank(shard);
  ASSERT_NE(master, 0u);
  std::string key;
  for (int i = 0; key.empty(); ++i)
    if (map.shard_of("wf" + std::to_string(i)) == shard)
      key = "wf" + std::to_string(i) + ".x";

  auto watcher = s.attach(6);
  KvsClient wkvs(*watcher);
  std::vector<bool> fires;  // true = value present at fire time
  WatchHandle watch = wkvs.watch(
      key, [&](const std::optional<Json>& v) { fires.push_back(v.has_value()); });
  s.ex().run();
  ASSERT_EQ(fires.size(), 1u);  // initial: absent
  EXPECT_FALSE(fires[0]);

  auto writer = s.attach(2);
  s.run([](Handle* hd, std::string k) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put(k, "v1");
    co_await kvs.commit();
  }(writer.get(), key));
  s.ex().run();
  ASSERT_GE(fires.size(), 2u);
  EXPECT_TRUE(fires.back());  // saw the committed value

  const std::size_t before = fires.size();
  s.session().fail(master);
  s.settle(std::chrono::milliseconds(5));  // detect, promote, announce
  ASSERT_GT(fires.size(), before)
      << "watch did not re-fire on the successor's setroot announcement";
  EXPECT_FALSE(fires.back());  // successor bootstraps empty: value lost
  const std::vector<NodeId>& masters = kvs0->shard_masters();
  EXPECT_NE(masters[shard], master) << "no successor promoted";

  s.run([](Handle* hd, std::string k) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put(k, "v2");
    co_await kvs.commit();
  }(writer.get(), key));
  s.ex().run();
  EXPECT_TRUE(fires.back());  // re-fired with the post-failover value
  EXPECT_TRUE(watch.active());
}

}  // namespace
}  // namespace flux
