// GC property test: random treeobj DAGs evolved through apply_transaction,
// random live-root sets and pins, then mark_and_sweep — which must (1) never
// collect anything reachable from a live root or pin, (2) never retain
// unreachable garbage older than the retention window, and (3) be idempotent
// (a second pass with the same inputs sweeps nothing).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "kvs/content_store.hpp"
#include "kvs/treeobj.hpp"
#include "test_seed.hpp"

namespace flux {
namespace {

std::string random_key(Rng& rng) {
  static const char* parts[] = {"a", "b", "deep", "jobs", "cfg", "x1", "x2"};
  std::string key;
  const auto depth = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < depth; ++i) {
    if (i) key += '.';
    key += parts[rng.below(std::size(parts))];
  }
  return key;
}

/// Every object reachable from `roots` (skipping refs absent from the
/// store — the independent reference walk the sweep is judged against).
std::set<Sha1> reachable_from(const ContentStore& store,
                              const std::vector<Sha1>& roots) {
  std::set<Sha1> seen;
  std::vector<Sha1> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const Sha1 id = stack.back();
    stack.pop_back();
    if (id == Sha1{} || !seen.insert(id).second) continue;
    const ObjPtr obj = store.get(id);
    if (!obj) continue;
    if (obj->is_dir())
      for (const auto& [name, ref] : obj->entries())
        if (auto r = Sha1::parse(ref.as_string())) stack.push_back(*r);
  }
  // Only objects actually present count (a pinned-but-absent ref is not an
  // object to retain).
  std::set<Sha1> present;
  for (const Sha1& id : seen)
    if (store.contains(id)) present.insert(id);
  return present;
}

TEST(GcProperty, RandomDagsSweepExactlyTheExpiredGarbage) {
  const std::uint64_t base = flux::testing::test_seed() + 0x6c0000;
  for (int iter = 0; iter < 25; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE(::testing::Message() << "gc property seed " << seed);
    Rng rng(seed);

    ContentStore store;
    store.set_birth_version(1);
    ObjPtr empty = empty_dir_object();
    Sha1 root = empty->id;
    store.put(std::move(empty));
    std::vector<Sha1> history = {root};

    // Evolve the tree: each version applies 1-4 random puts/unlinks, so
    // superseded directories and values accumulate as garbage with earlier
    // birth stamps.
    const std::uint64_t nversions = 8 + rng.below(8);
    for (std::uint64_t v = 2; v <= nversions; ++v) {
      store.set_birth_version(v);
      std::vector<Tuple> tuples;
      const auto nops = 1 + rng.below(4);
      for (std::uint64_t i = 0; i < nops; ++i) {
        std::string key = random_key(rng);
        if (rng.below(6) == 0) {
          tuples.push_back({std::move(key), Sha1{}});  // unlink tombstone
        } else {
          ObjPtr val = make_val_object(
              Json::object({{"v", static_cast<std::int64_t>(rng())}}));
          const Sha1 ref = val->id;
          store.put(std::move(val));
          tuples.push_back({std::move(key), ref});
        }
      }
      root = apply_transaction(store, root, tuples);
      history.push_back(root);
    }

    // Live roots: the current root plus a random sample of older ones (a
    // sharded master holds one root per shard; failover holds stale ones).
    std::vector<Sha1> live_roots = {root};
    for (const Sha1& h : history)
      if (rng.below(4) == 0) live_roots.push_back(h);

    // Pins: random objects (in-flight fence tuples), plus one id that is
    // deliberately absent from the store.
    GcOptions opt;
    opt.current_version = nversions;
    opt.retention = rng.below(4);
    std::vector<ObjPtr> all;
    store.for_each([&all](const ObjPtr& o, std::uint64_t) { all.push_back(o); });
    for (const ObjPtr& o : all)
      if (rng.below(8) == 0) opt.pins.push_back(o->id);
    opt.pins.push_back(Sha1::of("never-stored"));

    const std::set<Sha1> live = reachable_from(store, live_roots);
    std::set<Sha1> pinned_live;
    for (const Sha1& p : opt.pins)
      for (const Sha1& id : reachable_from(store, {p})) pinned_live.insert(id);

    std::map<Sha1, std::uint64_t> births;
    store.for_each([&births](const ObjPtr& o, std::uint64_t b) {
      births[o->id] = b;
    });
    const std::size_t before = store.count();

    const GcStats stats = mark_and_sweep(store, live_roots, opt);

    // (1) Safety: everything reachable from a live root or pin survives.
    for (const Sha1& id : live)
      EXPECT_TRUE(store.contains(id)) << "collected live object " << id.hex();
    for (const Sha1& id : pinned_live)
      EXPECT_TRUE(store.contains(id)) << "collected pinned object " << id.hex();

    // (2) Completeness: every survivor is reachable, pinned, or young.
    const std::uint64_t cutoff =
        opt.current_version > opt.retention
            ? opt.current_version - opt.retention
            : 0;
    store.for_each([&](const ObjPtr& o, std::uint64_t birth) {
      const bool ok = live.count(o->id) != 0 || pinned_live.count(o->id) != 0 ||
                      birth >= cutoff;
      EXPECT_TRUE(ok) << "retained expired garbage " << o->id.hex()
                      << " (birth " << birth << ", cutoff " << cutoff << ")";
    });

    // Accounting coheres with what actually happened.
    EXPECT_EQ(before - stats.swept, store.count());
    EXPECT_EQ(stats.marked + stats.retained + stats.swept, before);

    // (3) Idempotence: same inputs again sweep nothing.
    const GcStats again = mark_and_sweep(store, live_roots, opt);
    EXPECT_EQ(again.swept, 0u);
    EXPECT_EQ(again.marked, stats.marked);

    // Birth stamps were not disturbed by the sweep.
    store.for_each([&](const ObjPtr& o, std::uint64_t birth) {
      EXPECT_EQ(birth, births[o->id]);
    });
  }
}

TEST(GcProperty, RetentionZeroKeepsOnlyReachable) {
  // With no retention window the sweep reduces the store to exactly the
  // reachable set — the compaction precondition.
  const std::uint64_t seed = flux::testing::test_seed() + 0x6d0000;
  SCOPED_TRACE(::testing::Message() << "gc property seed " << seed);
  Rng rng(seed);
  ContentStore store;
  store.set_birth_version(1);
  ObjPtr empty = empty_dir_object();
  Sha1 root = empty->id;
  store.put(std::move(empty));
  for (std::uint64_t v = 2; v <= 12; ++v) {
    store.set_birth_version(v);
    ObjPtr val = make_val_object(
        Json::object({{"v", static_cast<std::int64_t>(rng())}}));
    const Sha1 ref = val->id;
    store.put(std::move(val));
    root = apply_transaction(store, root, {{random_key(rng), ref}});
  }
  GcOptions opt;
  opt.current_version = 1000;  // everything is far outside any window
  opt.retention = 0;
  (void)mark_and_sweep(store, {root}, opt);
  EXPECT_EQ(store.count(), reachable_from(store, {root}).size());
}

}  // namespace
}  // namespace flux
