// Golden wire-format vectors.
//
// Each case is a fully-populated message (route stack, trace hops, payload,
// bulk data, attachment) whose encoded bytes are committed as a hex dump
// under tests/golden/. The tests pin three things:
//
//   1. byte stability — encode(case) matches the committed dump, so any
//      codec layout change is a deliberate, reviewed golden update;
//   2. decode(encode(m)) == m for every case;
//   3. the committed frames still decode to the expected field values, so
//      old captured traffic stays readable.
//
// Regenerate the dumps after an intentional layout change with:
//   FLUX_UPDATE_GOLDEN=1 ./flux_tests --gtest_filter='GoldenWire.*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/hex.hpp"
#include "kvs/object_bundle.hpp"
#include "kvs/treeobj.hpp"
#include "msg/codec.hpp"
#include "msg/message.hpp"

namespace flux {
namespace {

struct GoldenCase {
  std::string name;
  Message msg;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;

  {
    // A traced request mid-flight: client origin on the route stack, two
    // brokers already stamped on the trace.
    Message m = Message::request(
        "kvs.get", Json::object({{"key", "a.b"}, {"flags", std::int64_t{0}}}));
    m.matchtag = 7;
    m.nodeid = kNodeAny;
    m.flags = kMsgFlagTrace;
    m.route = {RouteHop{RouteHop::Kind::Client, 1, 42},
               RouteHop{RouteHop::Kind::Broker, 1, 0}};
    m.trace = {TraceHop{1, TraceHop::Plane::Local, 1500},
               TraceHop{0, TraceHop::Plane::Tree, 4500}};
    cases.push_back({"request_traced", std::move(m)});
  }
  {
    // An error response unwinding toward its originating client.
    Message m;
    m.type = MsgType::Response;
    m.topic = "kvs.get";
    m.matchtag = 7;
    m.nodeid = 1;
    m.errnum = static_cast<int>(errc::noent);
    m.route = {RouteHop{RouteHop::Kind::Client, 1, 42}};
    m.set_payload(Json::object({{"errmsg", "no such key"}}));
    cases.push_back({"response_error", std::move(m)});
  }
  {
    // A globally-sequenced pub-sub event.
    Message m = Message::event(
        "kvs.setroot",
        Json::object({{"rootref", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
                      {"version", std::int64_t{9}}}));
    m.seq = 9;
    m.nodeid = 0;
    cases.push_back({"event_setroot", std::move(m)});
  }
  {
    // A commit flush carrying all three body frames: JSON payload, raw data,
    // and an ObjectBundle attachment.
    Message m = Message::request(
        "kvs.stage", Json::object({{"client", std::int64_t{3}},
                                   {"n", std::int64_t{2}}}));
    m.matchtag = 11;
    m.route = {RouteHop{RouteHop::Kind::Client, 2, 5}};
    m.set_data(std::make_shared<const std::string>("raw-frame-bytes"));
    m.set_attachment(std::make_shared<const ObjectBundle>(std::vector<ObjPtr>{
        make_val_object(Json::object({{"v", "hello"}})), empty_dir_object()}));
    cases.push_back({"request_bundle", std::move(m)});
  }
  return cases;
}

std::filesystem::path golden_path(const std::string& name) {
  return std::filesystem::path(FLUX_GOLDEN_DIR) / (name + ".hex");
}

std::string read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  std::string hex;
  in >> hex;  // single token; ignores the trailing newline
  return hex;
}

void expect_same_message(const Message& got, const Message& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.topic, want.topic);
  EXPECT_EQ(got.matchtag, want.matchtag);
  EXPECT_EQ(got.nodeid, want.nodeid);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.errnum, want.errnum);
  EXPECT_EQ(got.flags, want.flags);
  EXPECT_EQ(got.route, want.route);
  EXPECT_EQ(got.trace, want.trace);
  EXPECT_EQ(got.payload().dump(), want.payload().dump());
  ASSERT_EQ(static_cast<bool>(got.data()), static_cast<bool>(want.data()));
  if (want.data()) EXPECT_EQ(*got.data(), *want.data());
  ASSERT_EQ(static_cast<bool>(got.attachment()),
            static_cast<bool>(want.attachment()));
  if (want.attachment()) {
    EXPECT_EQ(got.attachment()->tag(), want.attachment()->tag());
    EXPECT_EQ(got.attachment()->serialize(), want.attachment()->serialize());
  }
}

class GoldenWire : public ::testing::Test {
 protected:
  void SetUp() override { ObjectBundle::register_codec(); }
};

TEST_F(GoldenWire, EncodedBytesAreStable) {
  const bool update = std::getenv("FLUX_UPDATE_GOLDEN") != nullptr;
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const std::string hex = hex_encode(encode(c.msg));
    if (update) {
      std::ofstream out(golden_path(c.name));
      out << hex << "\n";
      ASSERT_TRUE(out.good()) << "failed writing " << golden_path(c.name);
      continue;
    }
    const std::string want = read_golden(c.name);
    ASSERT_FALSE(want.empty())
        << "missing golden file " << golden_path(c.name)
        << " (regenerate with FLUX_UPDATE_GOLDEN=1)";
    EXPECT_EQ(hex, want) << "wire layout changed; if intentional, regenerate "
                            "goldens with FLUX_UPDATE_GOLDEN=1";
  }
}

TEST_F(GoldenWire, DecodeEncodeRoundTrips) {
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const std::vector<std::uint8_t> wire = encode(c.msg);
    auto decoded = decode(wire);
    ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
    expect_same_message(*decoded, c.msg);
    // Re-encoding the decoded message reproduces the exact frame.
    EXPECT_EQ(encode(*decoded), wire);
  }
}

TEST_F(GoldenWire, GoldenFramesDecode) {
  if (std::getenv("FLUX_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "regenerating goldens";
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const std::string hex = read_golden(c.name);
    ASSERT_FALSE(hex.empty()) << "missing golden file " << golden_path(c.name);
    auto bytes = hex_decode(hex);
    ASSERT_TRUE(bytes.has_value()) << "golden file is not valid hex";
    auto decoded = decode(*bytes);
    ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
    expect_same_message(*decoded, c.msg);
  }
}

}  // namespace
}  // namespace flux
