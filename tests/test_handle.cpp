// Client handle API surface: rpc variants, subscriptions, endpoint
// lifecycle, and multi-handle interactions on one broker.
#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

TEST(Handle, RpcCheckThrowsTypedErrors) {
  SimSession s;
  auto h = s.attach(2);
  try {
    s.run([](Handle* hd) -> Task<void> {
      Json payload = Json::object({{"key", "missing.key"}});
      (void)co_await hd->request("kvs.get").payload(std::move(payload)).call();
    }(h.get()));
    FAIL() << "expected throw";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::noent);
    // The message carries both the topic and the module's explanation.
    EXPECT_NE(std::string(e.what()).find("kvs.get"), std::string::npos);
  }
}

TEST(Handle, RawRpcReturnsErrnumWithoutThrowing) {
  SimSession s;
  auto h = s.attach(1);
  Message resp = s.run([](Handle* hd) -> Task<Message> {
    Json payload = Json::object({{"key", "missing.key"}});
    Message r = co_await hd->request("kvs.get").payload(std::move(payload)).send();
    co_return r;
  }(h.get()));
  EXPECT_EQ(resp.errnum, static_cast<int>(errc::noent));
}

TEST(Handle, ManyHandlesOnOneBrokerAreIndependent) {
  SimSession s(SimSession::default_config(4));
  auto a = s.attach(3);
  auto b = s.attach(3);
  // Transactions are per-handle: a's uncommitted puts don't leak through
  // b's commit... they are distinct endpoints, so b's commit must NOT
  // publish a's pending put.
  s.run([](Handle* ha, Handle* hb) -> Task<void> {
    KvsClient ka(*ha), kb(*hb);
    co_await ka.put("iso.a", 1);
    co_await kb.commit();  // b has nothing pending
    try {
      (void)co_await kb.get("iso.a");
      throw FluxException(Error(errc::proto, "a's put leaked through b"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::noent) throw;
    }
    co_await ka.commit();  // now a's put becomes visible
    Json v = co_await kb.get("iso.a");
    if (v != Json(1)) throw FluxException(Error(errc::proto, "lost put"));
  }(a.get(), b.get()));
}

TEST(Handle, SubscriptionCallbacksMayResubscribe) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  int first = 0, second = 0;
  Subscription sub2;
  Subscription sub1 = h->subscribe("re", [&](const Message&) {
    ++first;
    if (!sub2)
      sub2 = h->subscribe("re", [&](const Message&) { ++second; });
  });
  h->publish("re.1");
  s.ex().run();
  h->publish("re.2");
  s.ex().run();
  EXPECT_EQ(first, 2);
  EXPECT_EQ(second, 1);  // second sub active from the second event on
}

TEST(Handle, DestroyedHandleStopsReceiving) {
  SimSession s(SimSession::default_config(4));
  auto pub = s.attach(0);
  int count = 0;
  {
    auto h = s.attach(2);
    Subscription sub = h->subscribe("gone", [&](const Message&) { ++count; });
    pub->publish("gone.1");
    s.ex().run();
    EXPECT_EQ(count, 1);
  }  // handle destroyed, endpoint removed
  pub->publish("gone.2");
  s.ex().run();
  EXPECT_EQ(count, 1);
}

TEST(Handle, SleepAdvancesVirtualTime) {
  SimSession s;
  auto h = s.attach(0);
  const TimePoint before = s.ex().now();
  s.run([](Handle* hd) -> Task<void> {
    co_await hd->sleep(std::chrono::milliseconds(7));
  }(h.get()));
  EXPECT_GE(s.ex().now() - before, std::chrono::milliseconds(7));
}

TEST(Handle, ConcurrentRpcsMatchIndependently) {
  // Interleaved in-flight rpcs on one handle resolve to the right callers.
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(7);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    for (int i = 0; i < 10; ++i) co_await kvs.put("c.k" + std::to_string(i), i);
    co_await kvs.commit();
    // Fire ten gets without awaiting between them.
    std::vector<Future<Message>> pending;
    for (int i = 0; i < 10; ++i) {
      Json payload = Json::object({{"key", "c.k" + std::to_string(i)}});
      pending.push_back(hd->request("kvs.get").payload(std::move(payload)).send());
    }
    for (int i = 0; i < 10; ++i) {
      Message resp = co_await pending[static_cast<std::size_t>(i)];
      Handle::check(resp);
      ObjPtr obj = parse_object(*resp.data());
      if (obj->value() != Json(i))
        throw FluxException(Error(errc::proto, "responses cross-matched"));
    }
  }(h.get()));
}

TEST(Handle, UpstreamAddressingSkipsLocalModule) {
  // kNodeUpstream: the local kvs module is skipped; the parent's answers.
  SimSession s(SimSession::default_config(4));
  auto writer = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("ups.k", 5);
    co_await kvs.commit();
  }(writer.get()));
  auto h = s.attach(3);
  Message resp = s.run([](Handle* hd) -> Task<Message> {
    Message r = co_await hd->request("kvs.stats").upstream();
    co_return r;
  }(h.get()));
  EXPECT_EQ(resp.errnum, 0);
  EXPECT_NE(resp.payload().get_int("rank"), 3);  // answered upstream of us
}

}  // namespace
}  // namespace flux
