// FluxInstance: the hierarchical job model of §III — nested instances,
// the three hierarchy rules, elasticity, and dynamic power capping.
#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "exec/sim_executor.hpp"

namespace flux {
namespace {

ResourceGraph center(unsigned clusters = 2, unsigned racks = 2,
                     unsigned nodes = 8) {
  return ResourceGraph::build_center("center", clusters, racks, nodes, 16, 32,
                                     350, 100);
}

TEST(Instance, RunsAppJobsToCompletion) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  std::vector<std::string> completed;
  root.on_job_complete([&](std::uint64_t, const JobSpec& spec) {
    completed.push_back(spec.name);
  });
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(root.submit(JobSpec::app("app" + std::to_string(i), 8,
                                         std::chrono::milliseconds(2)))
                    .has_value());
  ex.run();
  EXPECT_EQ(completed.size(), 4u);
  EXPECT_TRUE(root.quiescent());
  EXPECT_EQ(root.pool().free_nodes(), 32u);
}

TEST(Instance, NestedInstanceRunsSubjobs) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  std::vector<JobSpec> subjobs;
  for (int i = 0; i < 6; ++i)
    subjobs.push_back(
        JobSpec::app("sub" + std::to_string(i), 4, std::chrono::milliseconds(1)));
  auto id = root.submit(JobSpec::instance("ensemble", 16, "fcfs", subjobs));
  ASSERT_TRUE(id.has_value());
  ex.run();
  EXPECT_EQ(root.state(*id), JobState::Complete);
  const auto stats = root.tree_stats();
  // 6 sub-jobs + the instance job itself; 2 instances existed in total.
  EXPECT_EQ(stats.jobs_completed, 7u);
  EXPECT_EQ(stats.instances, 2u);
  EXPECT_EQ(root.pool().free_nodes(), 32u);
}

TEST(Instance, ThreeLevelHierarchy) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "center", graph);
  // center -> cluster instance -> uq-ensemble instance -> apps
  std::vector<JobSpec> leaf_jobs;
  for (int i = 0; i < 4; ++i)
    leaf_jobs.push_back(
        JobSpec::app("leaf" + std::to_string(i), 2, std::chrono::milliseconds(1)));
  JobSpec mid = JobSpec::instance("uq", 8, "easy", leaf_jobs);
  JobSpec top = JobSpec::instance("campaign", 16, "fcfs", {mid});
  auto id = root.submit(top);
  ASSERT_TRUE(id.has_value());
  ex.run();
  EXPECT_EQ(root.state(*id), JobState::Complete);
  EXPECT_EQ(root.tree_stats().instances, 3u);
  EXPECT_EQ(root.tree_stats().jobs_completed, 6u);  // 4 leaves + 2 instances
}

TEST(Instance, ParentBoundingRuleCapsChild) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  // Child gets 4 nodes; a sub-job needing 8 can never run there.
  std::vector<JobSpec> subjobs{
      JobSpec::app("too-wide", 8, std::chrono::milliseconds(1))};
  auto id = root.submit(JobSpec::instance("narrow", 4, "fcfs", subjobs));
  ASSERT_TRUE(id.has_value());
  ex.run();
  // The instance completes (the infeasible sub-job was rejected, not hung).
  EXPECT_EQ(root.state(*id), JobState::Complete);
  EXPECT_EQ(root.tree_stats().jobs_completed, 1u);  // only the instance job
}

TEST(Instance, SiblingInstancesScheduleConcurrently) {
  // Two sibling child instances each run a serial chain of jobs; because
  // their schedulers are independent, total makespan is one chain, not two.
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  std::vector<JobSpec> chain;
  for (int i = 0; i < 5; ++i)
    chain.push_back(
        JobSpec::app("j" + std::to_string(i), 8, std::chrono::milliseconds(10)));
  auto a = root.submit(JobSpec::instance("childA", 8, "fcfs", chain));
  auto b = root.submit(JobSpec::instance("childB", 8, "fcfs", chain));
  ASSERT_TRUE(a.has_value() && b.has_value());
  const TimePoint t0 = ex.now();
  ex.run();
  const Duration makespan = ex.now() - t0;
  EXPECT_EQ(root.state(*a), JobState::Complete);
  EXPECT_EQ(root.state(*b), JobState::Complete);
  // Serial would be >= 100ms; concurrent ~50ms.
  EXPECT_LT(makespan, std::chrono::milliseconds(80));
  EXPECT_GE(makespan, std::chrono::milliseconds(50));
}

TEST(Instance, GrowWithParentalConsent) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  // A long-lived child instance (kept alive by a long job).
  std::vector<JobSpec> subjobs{
      JobSpec::app("long", 2, std::chrono::milliseconds(50))};
  auto id = root.submit(JobSpec::instance("elastic", 4, "fcfs", subjobs));
  ASSERT_TRUE(id.has_value());
  ex.run_for(std::chrono::milliseconds(5));
  auto children = root.children();
  ASSERT_EQ(children.size(), 1u);
  FluxInstance* child = children[0];
  EXPECT_EQ(child->pool().total_nodes(), 4u);

  ResourceRequest delta;
  delta.nnodes = 3;
  ASSERT_TRUE(child->request_grow(delta).has_value());
  EXPECT_EQ(child->pool().total_nodes(), 7u);
  // Parent's books reflect the grant.
  EXPECT_EQ(root.pool().free_nodes(), 32u - 7u);

  // And shrink back.
  ResourceRequest back;
  back.nnodes = 3;
  ASSERT_TRUE(child->release_shrink(back).has_value());
  EXPECT_EQ(child->pool().total_nodes(), 4u);
  EXPECT_EQ(root.pool().free_nodes(), 32u - 4u);
  ex.run();
}

TEST(Instance, GrowDeniedWhenParentExhausted) {
  SimExecutor ex;
  ResourceGraph graph = center(1, 1, 8);  // 8 nodes total
  FluxInstance root(ex, "root", graph);
  std::vector<JobSpec> subjobs{
      JobSpec::app("long", 1, std::chrono::milliseconds(50))};
  auto id = root.submit(JobSpec::instance("greedy", 8, "fcfs", subjobs));
  ASSERT_TRUE(id.has_value());
  ex.run_for(std::chrono::milliseconds(5));
  auto children = root.children();
  ASSERT_EQ(children.size(), 1u);
  ResourceRequest delta;
  delta.nnodes = 1;
  auto st = children[0]->request_grow(delta);
  EXPECT_FALSE(st.has_value());  // nothing left anywhere up the hierarchy
  ex.run();
}

TEST(Instance, RootGrowHasNoParent) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  ResourceRequest delta;
  delta.nnodes = 1;
  EXPECT_FALSE(root.request_grow(delta).has_value());
}

TEST(Instance, PowerCapShedsMalleableJobs) {
  SimExecutor ex;
  ResourceGraph graph = center();  // 32 nodes x 350 W
  FluxInstance root(ex, "root", graph);
  JobSpec hungry = JobSpec::app("hungry", 4, std::chrono::milliseconds(50), 4000);
  hungry.malleable = true;
  JobSpec rigid = JobSpec::app("rigid", 4, std::chrono::milliseconds(50), 2000);
  ASSERT_TRUE(root.submit(hungry).has_value());
  ASSERT_TRUE(root.submit(rigid).has_value());
  ex.run_for(std::chrono::milliseconds(5));
  EXPECT_DOUBLE_EQ(root.pool().power_in_use(), 6000);

  // Site-wide cap drops to 4000 W: the malleable job must shed ~2000 W.
  root.set_power_cap(4000);
  EXPECT_FALSE(root.pool().over_power_budget());
  EXPECT_LE(root.pool().power_in_use(), 4000.001);
  ex.run();
}

TEST(Instance, PowerCapCascadesToChildren) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  JobSpec child_spec =
      JobSpec::instance("powered", 8, "fcfs",
                        {JobSpec::app("long", 1, std::chrono::milliseconds(50))});
  child_spec.child_power_budget_w = 2000;
  child_spec.request.power_w = 2000;
  auto id = root.submit(child_spec);
  ASSERT_TRUE(id.has_value());
  ex.run_for(std::chrono::milliseconds(5));
  auto children = root.children();
  ASSERT_EQ(children.size(), 1u);
  EXPECT_DOUBLE_EQ(children[0]->pool().power_budget(), 2000);

  root.set_power_cap(1000);  // below the child's budget
  EXPECT_LT(children[0]->pool().power_budget(), 2000);
  ex.run();
}

TEST(Instance, SchedulingSpecializationPerChild) {
  // §III: "specialize the scheduling behaviors on subsets of resources".
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph, "fcfs");
  auto a = root.submit(JobSpec::instance(
      "strict", 8, "fcfs",
      {JobSpec::app("x", 8, std::chrono::milliseconds(1))}));
  auto b = root.submit(JobSpec::instance(
      "backfilling", 8, "easy",
      {JobSpec::app("y", 8, std::chrono::milliseconds(1))}));
  ASSERT_TRUE(a.has_value() && b.has_value());
  ex.run_for(std::chrono::microseconds(500));
  auto children = root.children();
  ASSERT_EQ(children.size(), 2u);
  std::set<std::string_view> policies;
  for (auto* c : children) policies.insert(c->scheduler().policy().name());
  EXPECT_TRUE(policies.contains("fcfs"));
  EXPECT_TRUE(policies.contains("easy"));
  ex.run();
}

TEST(Instance, EmptyInstanceCompletesImmediately) {
  SimExecutor ex;
  ResourceGraph graph = center();
  FluxInstance root(ex, "root", graph);
  auto id = root.submit(JobSpec::instance("empty", 4, "fcfs", {}));
  ASSERT_TRUE(id.has_value());
  ex.run();
  EXPECT_EQ(root.state(*id), JobState::Complete);
  EXPECT_EQ(root.pool().free_nodes(), 32u);
}

}  // namespace
}  // namespace flux
