// Cross-module integration scenarios on larger sessions: the full stack
// (PMI + wexec + mon + log + KVS) exercised concurrently, event ordering
// under concurrent publishers, and a center-scale KVS sweep.
#include <gtest/gtest.h>

#include "api/job_client.hpp"
#include "api/pmi.hpp"
#include "modules/logmod.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

TEST(Integration, FullStackConcurrentWorkloads) {
  SessionConfig cfg = SimSession::default_config(32);
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 200}})},
                    {"mon", Json::object({{"interval_epochs", 2}})}});
  SimSession s(cfg);

  int pmi_done = 0, wexec_done = 0, log_done = 0;

  // Workload 1: a 32-rank PMI bootstrap.
  std::vector<std::unique_ptr<Handle>> pmi_handles;
  for (int p = 0; p < 32; ++p) {
    pmi_handles.push_back(s.attach(static_cast<NodeId>(p)));
    co_spawn(s.ex(), [](Handle* h, int rank, int* d) -> Task<void> {
      Pmi pmi(*h, "intjob", rank, 32);
      co_await pmi.init();
      co_await pmi.put("c" + std::to_string(rank), std::to_string(rank));
      co_await pmi.barrier();
      std::string peer =
          co_await pmi.get("c" + std::to_string((rank + 7) % 32));
      if (peer != std::to_string((rank + 7) % 32))
        throw FluxException(Error(errc::proto, "bad peer card"));
      ++*d;
    }(pmi_handles.back().get(), p, &pmi_done), "pmi");
  }

  // Workload 2: a full-width job through the pipeline with KVS-captured
  // output.
  auto wh = s.attach(17);
  std::uint64_t wexec_jobid = 0;
  co_spawn(s.ex(), [](Handle* h, int* d, std::uint64_t* id) -> Task<void> {
    JobHandle jh =
        co_await h->job().name("intwx").command("hostname").nnodes(32).submit();
    *id = jh.id();
    JobResult r = co_await jh.wait();
    if (!r.success)
      throw FluxException(Error(errc::proto, "job failed"));
    ++*d;
  }(wh.get(), &wexec_done, &wexec_jobid), "wexec");

  // Workload 3: mon sampling activated through the KVS + log traffic.
  auto mh = s.attach(9);
  co_spawn(s.ex(), [](Handle* h, int* d) -> Task<void> {
    KvsClient kvs(*h);
    Json samplers = Json::array({"load", "mem"});
    co_await kvs.put("mon.samplers", std::move(samplers));
    co_await kvs.commit();
    for (int i = 0; i < 5; ++i) {
      Json rec = Json::object({{"level", 4},
                               {"component", "integration"},
                               {"text", "tick " + std::to_string(i)}});
      co_await h->request("log.append").payload(std::move(rec)).call();
      co_await h->sleep(std::chrono::microseconds(300));
    }
    ++*d;
  }(mh.get(), &log_done), "monlog");

  s.ex().run();
  s.settle(std::chrono::milliseconds(3));  // let mon epochs land

  EXPECT_EQ(pmi_done, 32);
  EXPECT_EQ(wexec_done, 1);
  EXPECT_EQ(log_done, 1);

  // Everything observable landed where it should.
  auto check = s.attach(0);
  s.run([](Handle* h, std::uint64_t jobid) -> Task<void> {
    KvsClient kvs(*h);
    const std::string base = "lwj." + std::to_string(jobid);
    (void)co_await kvs.get(base + ".31.stdout");        // wexec capture
    Json st = co_await kvs.get("job." + std::to_string(jobid) + ".state");
    if (st != Json("complete"))
      throw FluxException(Error(errc::proto, "job state not folded back"));
    auto mon = co_await kvs.list_dir("mon.data.load");  // mon aggregates
    if (mon.empty()) throw FluxException(Error(errc::proto, "no samples"));
  }(check.get(), wexec_jobid));
  auto* root_log =
      dynamic_cast<modules::Log*>(s.session().broker(0).find_module("log"));
  int integration_records = 0;
  for (const auto& rec : root_log->session_log())
    if (rec.component == "integration") ++integration_records;
  EXPECT_EQ(integration_records, 5);
}

TEST(Integration, EventOrderIsIdenticalEverywhere) {
  SimSession s(SimSession::default_config(16));
  // Three concurrent publishers on different ranks; every subscriber must
  // observe the exact same global order (root sequencing).
  std::vector<std::unique_ptr<Handle>> pubs;
  std::vector<std::unique_ptr<Handle>> subs;
  std::vector<Subscription> guards;
  std::vector<std::vector<std::string>> seen(4);
  for (int i = 0; i < 4; ++i) {
    subs.push_back(s.attach(static_cast<NodeId>(15 - i * 4)));
    auto* sink = &seen[static_cast<std::size_t>(i)];
    guards.push_back(subs.back()->subscribe("race", [sink](const Message& ev) {
      sink->push_back(ev.topic);
    }));
  }
  for (int p = 0; p < 3; ++p) {
    pubs.push_back(s.attach(static_cast<NodeId>(p * 5 + 1)));
    co_spawn(s.ex(), [](Handle* h, int publisher) -> Task<void> {
      for (int i = 0; i < 10; ++i) {
        h->publish("race.p" + std::to_string(publisher) + "." +
                   std::to_string(i));
        co_await yield_to(h->executor());
      }
    }(pubs.back().get(), p), "publisher");
  }
  s.ex().run();
  ASSERT_EQ(seen[0].size(), 30u);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0]);
  // Per-publisher order preserved within the global order.
  for (int p = 0; p < 3; ++p) {
    int last = -1;
    for (const auto& topic : seen[0]) {
      if (topic.find("race.p" + std::to_string(p) + ".") != 0) continue;
      const int idx = std::stoi(topic.substr(topic.rfind('.') + 1));
      EXPECT_GT(idx, last);
      last = idx;
    }
  }
}

TEST(Integration, CenterScaleKvsSweep) {
  // 128 brokers, binary tree: writers on every 8th rank, one fence, then a
  // full cross-read from the deepest leaves — a miniature KAP inline.
  SimSession s(SimSession::default_config(128));
  std::vector<std::unique_ptr<Handle>> handles;
  int done = 0;
  constexpr int kWriters = 16;
  for (int w = 0; w < kWriters; ++w) {
    handles.push_back(s.attach(static_cast<NodeId>(w * 8)));
    co_spawn(s.ex(), [](Handle* h, int id, int* d) -> Task<void> {
      KvsClient kvs(*h);
      co_await kvs.put("sweep.w" + std::to_string(id),
                       std::string(static_cast<std::size_t>(64 + id), '#'));
      co_await kvs.fence("sweep", kWriters);
      ++*d;
    }(handles.back().get(), w, &done), "writer");
  }
  s.ex().run();
  ASSERT_EQ(done, kWriters);
  for (NodeId leaf : {127u, 96u, 64u}) {
    auto reader = s.attach(leaf);
    s.run([](Handle* h) -> Task<void> {
      KvsClient kvs(*h);
      for (int w = 0; w < kWriters; ++w) {
        Json v = co_await kvs.get("sweep.w" + std::to_string(w));
        if (v.as_string().size() != static_cast<std::size_t>(64 + w))
          throw FluxException(Error(errc::proto, "bad sweep value"));
      }
    }(reader.get()));
  }
}

TEST(Integration, WatchDrivenToolReactsToJobCompletion) {
  // A "tool" watches the lwj directory; launching a job must wake it
  // (hash-tree property: a directory changes when anything below changes).
  SimSession s(SimSession::default_config(8));
  auto tool = s.attach(5);
  KvsClient tool_kvs(*tool);
  int wakes = 0;
  WatchHandle watch =
      tool_kvs.watch("lwj", [&](const std::optional<Json>&) { ++wakes; });
  s.ex().run();
  EXPECT_EQ(wakes, 1);  // initial (absent)

  auto launcher = s.attach(2);
  s.run([](Handle* h) -> Task<void> {
    JobHandle jh =
        co_await h->job().name("watched").command("hostname").nnodes(2).submit();
    (void)co_await jh.wait();
  }(launcher.get()));
  s.ex().run();
  EXPECT_GE(wakes, 2);  // job stdio/exit commit changed the lwj dir
}

}  // namespace
}  // namespace flux
