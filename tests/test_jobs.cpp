// The job lifecycle pipeline: ingest -> queue -> schedule -> execute ->
// complete, with every transition folded into the KVS, fronted by the fluent
// h.job() client API (ctest -L jobs).
#include <gtest/gtest.h>

#include "api/job_client.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

TEST(Jobs, SubmitWaitComplete) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(5);
  JobResult r = s.run([](Handle* hd) -> Task<JobResult> {
    Json args = Json::object({{"text", "hi"}});  // hoisted (gcc 12 + co_await)
    JobHandle jh = co_await hd->job()
                       .name("hello")
                       .command("echo", std::move(args))
                       .nnodes(2)
                       .walltime(std::chrono::milliseconds(1))
                       .submit();
    if (!jh.valid()) throw FluxException(Error(errc::proto, "invalid handle"));
    JobResult out = co_await jh.wait();
    co_return out;
  }(h.get()));
  EXPECT_EQ(r.state, JobState::Complete);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.ntasks, 2);
  EXPECT_EQ(r.exits.get_int("0"), 2);
}

TEST(Jobs, LifecycleFoldedIntoKvs) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    JobHandle jh = co_await hd->job().nnodes(2).submit();
    (void)co_await jh.wait();
    // Everything under job.<id>.: jobspec, state, ranks, result, stdio ref,
    // and the event log recording every transition in order.
    KvsClient kvs(*hd);
    const std::string base = jh.kvs_dir();
    Json spec = co_await kvs.get(base + ".jobspec");
    if (spec.get_int("request", -1) == -1 && !spec.contains("request"))
      throw FluxException(Error(errc::proto, "jobspec not folded back"));
    Json state = co_await kvs.get(base + ".state");
    if (state != Json("complete"))
      throw FluxException(Error(errc::proto, "state not complete"));
    Json ranks = co_await kvs.get(base + ".ranks");
    if (ranks.size() != 2)
      throw FluxException(Error(errc::proto, "ranks not folded back"));
    Json result = co_await kvs.get(base + ".result");
    if (!result.get_bool("success"))
      throw FluxException(Error(errc::proto, "result not folded back"));
    Json stdio = co_await kvs.get(base + ".stdio");
    (void)co_await kvs.get(stdio.as_string() + ".0.exitcode");

    Json log = co_await jh.events();
    std::vector<std::string> names;
    for (const Json& e : log.as_array()) names.push_back(e.get_string("name"));
    const std::vector<std::string> want{"submit", "alloc", "start", "finish"};
    if (names != want)
      throw FluxException(Error(errc::proto, "unexpected event sequence"));
    // Timestamps are monotone.
    std::int64_t last = -1;
    for (const Json& e : log.as_array()) {
      if (e.get_int("t") < last)
        throw FluxException(Error(errc::proto, "eventlog time regression"));
      last = e.get_int("t");
    }
  }(h.get()));
}

TEST(Jobs, WatchDrivenStateObservation) {
  // The existing KVS watch machinery observes job state transitions — no
  // polling API needed.
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  std::vector<std::string> states;
  s.run([](Handle* hd, std::vector<std::string>* out) -> Task<void> {
    KvsClient kvs(*hd);
    JobHandle jh = co_await hd->job().command("spin").nnodes(1).submit();
    WatchHandle w = kvs.watch(jh.kvs_dir() + ".state",
                              [out](const std::optional<Json>& v) {
                                if (v) out->push_back(v->as_string());
                              });
    while (co_await jh.state() != JobState::Running)
      co_await hd->sleep(std::chrono::microseconds(200));
    co_await jh.cancel();
    (void)co_await jh.wait();
    co_await hd->sleep(std::chrono::milliseconds(1));  // drain watch refresh
  }(h.get(), &states));
  ASSERT_GE(states.size(), 2u);
  EXPECT_EQ(states.back(), "canceled");
}

TEST(Jobs, CancelPendingJob) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    // Occupy the whole session so the next job stays Pending.
    JobHandle blocker = co_await hd->job().command("spin").nnodes(4).submit();
    JobHandle queued = co_await hd->job().nnodes(4).submit();
    if (co_await queued.state() != JobState::Pending)
      throw FluxException(Error(errc::proto, "expected queued job pending"));
    co_await queued.cancel();
    JobResult r = co_await queued.wait();
    if (r.state != JobState::Canceled)
      throw FluxException(Error(errc::proto, "cancel did not stick"));
    co_await blocker.cancel();
    (void)co_await blocker.wait();
  }(h.get()));
}

TEST(Jobs, PriorityOrdersPendingQueue) {
  SimSession s(SimSession::default_config(2));
  auto h = s.attach(1);
  // While a blocker holds every node, submit low-priority then high-priority
  // full-width jobs; the high-priority one must run (and finish) first.
  std::vector<std::uint64_t> finish_order;
  s.run([](Handle* hd, std::vector<std::uint64_t>* order) -> Task<void> {
    JobHandle blocker = co_await hd->job().command("spin").nnodes(2).submit();
    while (co_await blocker.state() != JobState::Running)
      co_await hd->sleep(std::chrono::microseconds(200));
    JobHandle low = co_await hd->job().nnodes(2).priority(0).submit();
    JobHandle high = co_await hd->job().nnodes(2).priority(10).submit();
    co_await blocker.cancel();
    (void)co_await blocker.wait();
    KvsClient kvs(*hd);
    (void)co_await low.wait();
    (void)co_await high.wait();
    // Reconstruct execution order from the committed eventlogs.
    auto start_time = [](const Json& log) -> std::int64_t {
      for (const Json& e : log.as_array())
        if (e.get_string("name") == "start") return e.get_int("t");
      return -1;
    };
    Json llog = co_await low.events();
    Json hlog = co_await high.events();
    if (start_time(hlog) >= start_time(llog))
      throw FluxException(Error(errc::proto, "priority did not reorder"));
    order->push_back(high.id());
    order->push_back(low.id());
  }(h.get(), &finish_order));
  ASSERT_EQ(finish_order.size(), 2u);
}

TEST(Jobs, AdmissionControlRejectsWhenQueueFull) {
  SessionConfig cfg = SimSession::default_config(2);
  cfg.module_config =
      Json::object({{"job-manager", Json::object({{"max_queue", 1}})}});
  SimSession s(cfg);
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    JobHandle blocker = co_await hd->job().command("spin").nnodes(2).submit();
    while (co_await blocker.state() != JobState::Running)
      co_await hd->sleep(std::chrono::microseconds(200));
    JobHandle queued = co_await hd->job().nnodes(2).submit();  // fills queue
    try {
      (void)co_await hd->job().nnodes(2).submit();
      throw FluxException(Error(errc::proto, "over-admission"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::job_rejected) throw;
    }
    co_await blocker.cancel();
    co_await queued.cancel();
    (void)co_await blocker.wait();
    (void)co_await queued.wait();
  }(h.get()));
}

TEST(Jobs, InfeasibleRequestIsUnsatisfiable) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  s.run([](Handle* hd) -> Task<void> {
    try {
      (void)co_await hd->job().nnodes(5).submit();  // session has 4 nodes
      throw FluxException(Error(errc::proto, "impossible job accepted"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::alloc_unsatisfiable) throw;
    }
  }(h.get()));
}

TEST(Jobs, MalformedSpecRejectedAtFirstHop) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    try {
      (void)co_await hd->job().nnodes(0).submit();
    } catch (const FluxException& e) {
      if (e.error().code != errc::job_rejected) throw;
      co_return;
    }
    throw FluxException(Error(errc::proto, "invalid jobspec accepted"));
  }(h.get()));
}

TEST(Jobs, UnknownJobErrors) {
  SimSession s(SimSession::default_config(2));
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    JobHandle ghost(*hd, 424242);
    for (int op = 0; op < 3; ++op) {
      try {
        if (op == 0)
          (void)co_await ghost.state();
        else if (op == 1)
          (void)co_await ghost.wait();
        else
          co_await ghost.cancel();
        throw FluxException(Error(errc::proto, "ghost job answered"));
      } catch (const FluxException& e) {
        if (e.error().code != errc::job_unknown) throw;
      }
    }
  }(h.get()));
}

TEST(Jobs, StatsExposedThroughRegistry) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  Json stats = s.run([](Handle* hd) -> Task<Json> {
    for (int i = 0; i < 3; ++i) {
      JobHandle jh = co_await hd->job().nnodes(1).submit();
      (void)co_await jh.wait();
    }
    // All job-manager state lives at the root; ask its registry directly
    // (the aggregated path is obs::FluxStats / `flux stats job-manager`).
    Message resp =
        co_await hd->request("job-manager.stats.get").to(0).call();
    co_return resp.payload();
  }(h.get()));
  const Json& counters = stats.at("counters");
  EXPECT_EQ(counters.get_int("job-manager.submitted"), 3);
  EXPECT_EQ(counters.get_int("job-manager.completed"), 3);
  EXPECT_EQ(counters.get_int("job-manager.sched.completed"), 3);
  EXPECT_GE(counters.get_int("job-manager.sched.passes"), 1);
  const Json& hists = stats.at("histograms");
  EXPECT_EQ(hists.at("job-manager.alloc_ns").get_int("count"), 3);
  EXPECT_EQ(stats.get_int("queue_depth", -1), 0);
  EXPECT_EQ(stats.get_int("running", -1), 0);
}

TEST(Jobs, BrokerCrashMidJobNeverOrphansAllocation) {
  // The chaos acceptance scenario: a broker dies while its rank runs job
  // tasks. The job must end Failed (or re-queued then terminal), the
  // allocation must return to resvc, and the event log must say why.
  SessionConfig cfg = SimSession::default_config(8);
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 100}})},
                    {"live", Json::object({{"missed_max", 3}})}});
  SimSession s(cfg);
  auto h = s.attach(0);

  // The crash must land while the job runs, so inject it from inside the
  // simulation: SimSession::run drains to idle, which would otherwise march
  // virtual time through the job's whole lifetime before we ever pulled the
  // plug.
  JobHandle jh;
  JobResult r = s.run([](SimSession* sim, Handle* hd,
                         JobHandle* out) -> Task<JobResult> {
    JobHandle j = co_await hd->job().command("spin").nnodes(3).submit();
    while (co_await j.state() != JobState::Running)
      co_await hd->sleep(std::chrono::microseconds(200));
    KvsClient kvs(*hd);
    Json ranks = co_await kvs.get(j.kvs_dir() + ".ranks");
    // Kill a non-root participant mid-run.
    NodeId victim = 0;
    for (const Json& rk : ranks.as_array())
      if (rk.as_int() != 0) victim = static_cast<NodeId>(rk.as_int());
    if (victim == 0)
      throw FluxException(Error(errc::proto, "no non-root rank allocated"));
    sim->session().fail(victim);
    *out = j;
    co_return co_await j.wait();  // node_down detection must unpark this
  }(&s, h.get(), &jh));
  EXPECT_EQ(r.state, JobState::Failed);

  // Allocation returned: everything except the dead node is free again.
  s.run([](Handle* hd, JobHandle j) -> Task<void> {
    Message resp = co_await hd->request("resvc.status").call();
    if (resp.payload().get_int("free") != 7)
      throw FluxException(Error(errc::proto, "allocation orphaned"));
    if (resp.payload().get_int("down") != 1)
      throw FluxException(Error(errc::proto, "dead node not excluded"));
    if (resp.payload().at("jobs").size() != 0)
      throw FluxException(Error(errc::proto, "allocation record leaked"));
    Json log = co_await j.events();
    bool node_down = false;
    for (const Json& e : log.as_array())
      if (e.get_string("name") == "node_down") node_down = true;
    if (!node_down)
      throw FluxException(
          Error(errc::proto, "no node_down event in " + log.dump()));
    // And the session still runs new jobs on the surviving nodes.
    JobHandle next = co_await hd->job().nnodes(2).submit();
    JobResult nr = co_await next.wait();
    if (nr.state != JobState::Complete)
      throw FluxException(Error(errc::proto, "session wedged after crash"));
  }(h.get(), jh));
}

}  // namespace
}  // namespace flux
