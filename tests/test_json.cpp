// JSON value model, parser, canonical serialization.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "base/hex.hpp"
#include "base/rng.hpp"
#include "hash/sha1.hpp"
#include "json/json.hpp"
#include "kvs/object_bundle.hpp"
#include "msg/codec.hpp"

namespace flux {
namespace {

TEST(Json, ScalarTypes) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(42).is_int());
  EXPECT_TRUE(Json(4.5).is_double());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
}

TEST(Json, IntAndDoubleStayDistinct) {
  EXPECT_NE(Json(1), Json(1.0));
  EXPECT_EQ(Json(1).dump(), "1");
  EXPECT_EQ(Json(1.0).dump(), "1.0");
}

TEST(Json, DumpCanonicalSortedKeys) {
  Json j = Json::object({{"zebra", 1}, {"alpha", 2}, {"mid", 3}});
  EXPECT_EQ(j.dump(), R"({"alpha":2,"mid":3,"zebra":1})");
}

TEST(Json, EqualObjectsSerializeIdentically) {
  Json a = Json::object({{"x", 1}, {"y", "two"}});
  Json b;
  b["y"] = "two";
  b["x"] = 1;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(Json, StringEscapes) {
  Json j = Json("line\n\"quoted\"\ttab\\slash\x01");
  EXPECT_EQ(j.dump(), R"("line\n\"quoted\"\ttab\\slash\u0001")");
  auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, j);
}

TEST(Json, ParseBasics) {
  auto v = Json::parse(R"({"a": [1, 2.5, "x", true, false, null], "b": {}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at("a").size(), 6u);
  EXPECT_EQ(v->at("a").as_array()[0], Json(1));
  EXPECT_EQ(v->at("a").as_array()[1], Json(2.5));
  EXPECT_TRUE(v->at("b").is_object());
}

TEST(Json, ParseTopLevelScalars) {
  EXPECT_EQ(*Json::parse("true"), Json(true));
  EXPECT_EQ(*Json::parse("false"), Json(false));
  EXPECT_EQ(*Json::parse("null"), Json());
  EXPECT_EQ(*Json::parse("-17"), Json(-17));
  EXPECT_EQ(*Json::parse("\"s\""), Json("s"));
  EXPECT_EQ(*Json::parse("1e3"), Json(1000.0));
}

TEST(Json, ParseUnicodeEscapes) {
  auto v = Json::parse(R"("Aé中😀")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80");
}

TEST(Json, ParseErrors) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01x", "\"unterminated",
        "[1] trailing", "{\"a\" 1}", "\"\\u12\"", "\"bad\x01ctl\"",
        "nan", "+1"}) {
    auto v = Json::parse(bad);
    EXPECT_FALSE(v.has_value()) << "input: " << bad;
  }
}

TEST(Json, DeepNestingLimit) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(Json, Int64RoundTrip) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  Json j(big);
  auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_int(), big);
}

TEST(Json, GettersWithDefaults) {
  Json j = Json::object({{"i", 7}, {"s", "str"}, {"b", true}, {"d", 2.5}});
  EXPECT_EQ(j.get_int("i"), 7);
  EXPECT_EQ(j.get_int("missing", -1), -1);
  EXPECT_EQ(j.get_string("s"), "str");
  EXPECT_EQ(j.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(j.get_bool("b"));
  EXPECT_DOUBLE_EQ(j.get_double("d"), 2.5);
  EXPECT_DOUBLE_EQ(j.get_double("i"), 7.0);  // int promotes
}

TEST(Json, AtOnMissingReturnsNull) {
  Json j = Json::object({{"x", 1}});
  EXPECT_TRUE(j.at("nope").is_null());
  EXPECT_TRUE(Json(3).at("anything").is_null());
}

TEST(Json, TypeErrorsThrow) {
  EXPECT_THROW((void)Json("s").as_int(), FluxException);
  EXPECT_THROW((void)Json(1).as_string(), FluxException);
  EXPECT_THROW((void)Json(1).as_array(), FluxException);
  EXPECT_THROW((void)Json(1).as_object(), FluxException);
  EXPECT_THROW((void)Json("s").as_double(), FluxException);
}

TEST(Json, SubscriptPromotesNull) {
  Json j;
  j["a"]["b"] = 5;
  EXPECT_EQ(j.at("a").at("b"), Json(5));
}

TEST(Json, PushBackPromotesNull) {
  Json j;
  j.push_back(1);
  j.push_back("two");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, DumpSizeMatchesDump) {
  Json j = Json::object(
      {{"arr", Json::array({1, 2.5, "three", true, nullptr})},
       {"nested", Json::object({{"k", "v\nescaped"}})},
       {"n", -42}});
  EXPECT_EQ(j.dump_size(), j.dump().size());
}

TEST(Json, PrettyPrintParsesBack) {
  Json j = Json::object({{"a", Json::array({1, 2})}, {"b", Json::object()}});
  auto parsed = Json::parse(j.dump_pretty());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, j);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

// Canonical-serialization golden vectors. The KVS content-addresses objects
// by SHA1 of their canonical dump, so these bytes — sorted keys, minimal
// whitespace, ".0" on integral doubles, \u escapes for control chars — are
// an on-disk/on-wire format. Any serializer change that shifts them silently
// re-keys every stored object; this test makes that a reviewed decision.
TEST(Json, CanonicalGoldenVectors) {
  struct Vector {
    Json doc;
    const char* canonical;
    const char* sha1;
  };
  const Vector vectors[] = {
      {Json::object({{"t", "dir"}, {"e", Json::object()}}),
       R"({"e":{},"t":"dir"})", "7404997d477c6392b00b5d52834d4eedc78a06ba"},
      {Json::object({{"t", "val"}, {"d", "hello"}}),
       R"({"d":"hello","t":"val"})",
       "34308fd011a7c48f34e9dbfe9e14e61ece1c56d4"},
      {Json::object(
           {{"b", 2.0},
            {"a", "x\ny"},
            {"c", Json::array({1, "2", true, nullptr})}}),
       R"({"a":"x\ny","b":2.0,"c":[1,"2",true,null]})",
       "8049af03789c43e857a395a2400b555c212b8e6a"},
      {Json::object(
           {{"pi", 3.141592653589793}, {"neg", -1}, {"u", "\x01\"q\""}}),
       R"({"neg":-1,"pi":3.141592653589793,"u":"\u0001\"q\""})",
       "d17f939fda635051c51579d32dfe6a1e1cf1fdf0"},
  };
  for (const Vector& v : vectors) {
    SCOPED_TRACE(v.canonical);
    EXPECT_EQ(v.doc.dump(), v.canonical);
    EXPECT_EQ(v.doc.dump_size(), std::string_view(v.canonical).size());
    std::string into;
    v.doc.dump_into(into);
    EXPECT_EQ(into, v.canonical);
    EXPECT_EQ(Sha1::of(v.doc.dump()).hex(), v.sha1);
    auto parsed = Json::parse(v.canonical);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->dump(), v.canonical);
  }
}

// Every payload in the committed golden wire corpus re-serializes to the
// same canonical bytes after a parse round-trip — the corpus frames embed
// canonical JSON, so this checks the serializer against real traffic shapes
// rather than hand-picked vectors.
TEST(Json, GoldenCorpusPayloadsRoundTrip) {
  ObjectBundle::register_codec();  // request_bundle.hex carries an attachment
  int checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(FLUX_GOLDEN_DIR)) {
    if (entry.path().extension() != ".hex") continue;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    std::string hex;
    in >> hex;
    auto bytes = hex_decode(hex);
    ASSERT_TRUE(bytes.has_value());
    auto msg = decode(*bytes);
    ASSERT_TRUE(msg.has_value()) << msg.error().to_string();
    const std::string canonical = msg->payload().dump();
    auto reparsed = Json::parse(canonical);
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->dump(), canonical);
    EXPECT_EQ(Sha1::of(reparsed->dump()), Sha1::of(canonical));
    ++checked;
  }
  EXPECT_GE(checked, 4) << "golden corpus went missing";
}

// Property: random structured values round-trip through dump/parse.
TEST(JsonProperty, RandomRoundTrip) {
  Rng rng(20260705);
  for (int iter = 0; iter < 200; ++iter) {
    // Build a random value of bounded depth.
    std::function<Json(int)> gen = [&](int depth) -> Json {
      const std::uint64_t pick = rng.below(depth >= 4 ? 5 : 7);
      switch (pick) {
        case 0: return Json();
        case 1: return Json(rng.below(2) == 0);
        case 2: return Json(static_cast<std::int64_t>(rng() >> 1) -
                            static_cast<std::int64_t>(rng() >> 2));
        case 3: return Json(rng.uniform() * 1e6 - 5e5);
        case 4: return Json(rng.bytes(rng.below(20)));
        case 5: {
          Json arr = Json::array();
          const auto n = rng.below(4);
          for (std::uint64_t i = 0; i < n; ++i) arr.push_back(gen(depth + 1));
          return arr;
        }
        default: {
          Json obj = Json::object();
          const auto n = rng.below(4);
          for (std::uint64_t i = 0; i < n; ++i)
            obj[rng.bytes(1 + rng.below(8))] = gen(depth + 1);
          return obj;
        }
      }
    };
    const Json value = gen(0);
    const std::string text = value.dump();
    auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, value) << text;
    EXPECT_EQ(value.dump_size(), text.size());
    // Serialization is a fixed point: re-dumping the parse reproduces the
    // exact bytes, so the SHA1 content address survives any number of
    // parse/serialize hops (the dedup invariant).
    EXPECT_EQ(parsed->dump(), text) << text;
    EXPECT_EQ(Sha1::of(parsed->dump()), Sha1::of(text));
    std::string into;
    value.dump_into(into);
    EXPECT_EQ(into, text);
  }
}

}  // namespace
}  // namespace flux
