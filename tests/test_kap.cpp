// KAP driver: phases, parameters, and the paper's qualitative findings at
// test-friendly scale (parameterized sweeps act as property tests on the
// evaluation's shape claims).
#include <gtest/gtest.h>

#include "kap/kap.hpp"

namespace flux::kap {
namespace {

KapConfig small(std::uint32_t nodes = 8, std::uint32_t ppn = 4) {
  KapConfig cfg;
  cfg.nnodes = nodes;
  cfg.procs_per_node = ppn;
  return cfg;
}

TEST(Kap, RunsAllPhasesAndReportsStats) {
  KapConfig cfg = small();
  cfg.gets_per_consumer = 2;
  const KapResult r = run_kap(cfg);
  EXPECT_GT(r.wireup.count(), 0);
  EXPECT_GT(r.producer.max.count(), 0);
  EXPECT_GT(r.sync.max.count(), 0);
  EXPECT_GT(r.consumer.max.count(), 0);
  EXPECT_EQ(r.total_objects, 32u);
  EXPECT_GT(r.net_messages, 0u);
  EXPECT_GE(r.producer.max, r.producer.p99);
  EXPECT_GE(r.producer.p99, r.producer.p50);
}

TEST(Kap, ObjectKeyLayouts) {
  KapConfig cfg = small();
  cfg.single_directory = true;
  EXPECT_EQ(object_key(cfg, 7), "kap.k7");
  cfg.single_directory = false;
  cfg.dir_fanout = 128;
  EXPECT_EQ(object_key(cfg, 7), "kap.d0.k7");
  EXPECT_EQ(object_key(cfg, 129), "kap.d1.k129");
}

TEST(Kap, ProducerConsumerSubsets) {
  KapConfig cfg = small();
  cfg.nproducers = 4;
  cfg.nconsumers = 8;
  cfg.gets_per_consumer = 1;
  const KapResult r = run_kap(cfg);
  EXPECT_EQ(r.total_objects, 4u);
  EXPECT_GT(r.consumer.max.count(), 0);
}

TEST(Kap, WaitVersionSyncMode) {
  KapConfig cfg = small(4, 2);
  cfg.sync = KapConfig::Sync::WaitVersion;
  cfg.gets_per_consumer = 1;
  const KapResult r = run_kap(cfg);
  EXPECT_GT(r.sync.max.count(), 0);
}

TEST(Kap, StridedAccessPattern) {
  KapConfig cfg = small();
  cfg.gets_per_consumer = 4;
  cfg.access_stride = 7;
  const KapResult r = run_kap(cfg);
  EXPECT_GT(r.consumer.max.count(), 0);
}

// --- shape properties (the paper's findings, at reduced scale) -------------

class KapScale : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KapScale, FenceRedundantNeverSlowerThanUnique) {
  KapConfig cfg = small(GetParam());
  cfg.value_size = 4096;
  cfg.gets_per_consumer = 0;
  KapConfig red = cfg;
  red.redundant_values = true;
  const auto u = run_kap(cfg);
  const auto r = run_kap(red);
  EXPECT_LE(r.sync.max.count(), u.sync.max.count());
  // And strictly less bytes on the wire.
  EXPECT_LT(r.net_bytes, u.net_bytes);
}

TEST_P(KapScale, MultiDirNeverSlowerThanSingleDir) {
  KapConfig cfg = small(GetParam());
  cfg.puts_per_producer = 8;  // enough keys for several directories
  cfg.gets_per_consumer = 2;
  cfg.dir_fanout = 16;
  KapConfig multi = cfg;
  multi.single_directory = false;
  const auto single = run_kap(cfg);
  const auto m = run_kap(multi);
  EXPECT_LE(m.consumer.max.count(), single.consumer.max.count() * 11 / 10);
}

INSTANTIATE_TEST_SUITE_P(Scales, KapScale, ::testing::Values(4u, 8u, 16u));

TEST(KapShape, UniqueFenceGrowsWithProducers) {
  auto sync_at = [](std::uint32_t nodes) {
    KapConfig cfg = small(nodes);
    cfg.value_size = 2048;
    cfg.gets_per_consumer = 0;
    return run_kap(cfg).sync.max.count();
  };
  const auto s8 = sync_at(8);
  const auto s32 = sync_at(32);
  EXPECT_GT(s32, s8 * 2);  // clearly growing (paper: ~linear)
}

TEST(KapShape, PutLatencyIndependentOfScale) {
  auto prod_at = [](std::uint32_t nodes) {
    KapConfig cfg = small(nodes);
    cfg.gets_per_consumer = 0;
    return run_kap(cfg).producer.max.count();
  };
  const auto p8 = prod_at(8);
  const auto p32 = prod_at(32);
  EXPECT_LT(p32, p8 * 2);  // near-flat (paper: "scales well")
}

TEST(KapShape, ConsumerValuesVerified) {
  // The driver validates every byte read; a passing run IS the property.
  KapConfig cfg = small();
  cfg.value_size = 512;
  cfg.gets_per_consumer = 8;
  cfg.redundant_values = false;
  EXPECT_NO_THROW(run_kap(cfg));
  cfg.redundant_values = true;
  EXPECT_NO_THROW(run_kap(cfg));
}

}  // namespace
}  // namespace flux::kap
