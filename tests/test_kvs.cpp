// KVS: hash-tree semantics, commit/fence, faulting, watch, versions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "kvs/kvs_module.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

Task<void> put_commit(Handle* h, std::string key, Json value) {
  KvsClient kvs(*h);
  co_await kvs.put(std::move(key), std::move(value));
  co_await kvs.commit();
}

TEST(Kvs, PutCommitGetAcrossRanks) {
  SimSession s(SimSession::default_config(8));
  auto writer = s.attach(7);
  auto reader = s.attach(4);
  s.run(put_commit(writer.get(), "a.b.c", 42));
  Json v = s.run([](Handle* h) -> Task<Json> {
    KvsClient kvs(*h);
    co_return co_await kvs.get("a.b.c");
  }(reader.get()));
  EXPECT_EQ(v, Json(42));
}

TEST(Kvs, GetMissingKeyIsEnoent) {
  SimSession s;
  auto h = s.attach(3);
  try {
    s.run([](Handle* hd) -> Task<void> {
      KvsClient kvs(*hd);
      (void)co_await kvs.get("no.such.key");
    }(h.get()));
    FAIL() << "expected ENOENT";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::noent);
  }
}

TEST(Kvs, PathAcrossValueIsEnotdir) {
  SimSession s;
  auto h = s.attach(1);
  s.run(put_commit(h.get(), "x.v", 1));
  try {
    s.run([](Handle* hd) -> Task<void> {
      KvsClient kvs(*hd);
      (void)co_await kvs.get("x.v.deeper");
    }(h.get()));
    FAIL() << "expected ENOTDIR";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::not_dir);
  }
}

TEST(Kvs, GetDirectoryIsEisdir) {
  SimSession s;
  auto h = s.attach(2);
  s.run(put_commit(h.get(), "dir.sub.leaf", 1));
  try {
    s.run([](Handle* hd) -> Task<void> {
      KvsClient kvs(*hd);
      (void)co_await kvs.get("dir.sub");
    }(h.get()));
    FAIL() << "expected EISDIR";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::is_dir);
  }
}

TEST(Kvs, ListDirAndRootDir) {
  SimSession s;
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("top.a", 1);
    co_await kvs.put("top.b", 2);
    co_await kvs.put("other", 3);
    co_await kvs.commit();
    auto top = co_await kvs.list_dir("top");
    if (top != std::vector<std::string>{"a", "b"})
      throw FluxException(Error(errc::proto, "bad top listing"));
    auto root = co_await kvs.list_dir(".");
    bool has_top = false, has_other = false;
    for (const auto& name : root) {
      has_top |= (name == "top");
      has_other |= (name == "other");
    }
    if (!has_top || !has_other)
      throw FluxException(Error(errc::proto, "bad root listing"));
  }(h.get()));
}

TEST(Kvs, UnlinkRemovesKey) {
  SimSession s;
  auto h = s.attach(1);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("gone.soon", "x");
    co_await kvs.commit();
    co_await kvs.unlink("gone.soon");
    co_await kvs.commit();
    try {
      (void)co_await kvs.get("gone.soon");
      throw FluxException(Error(errc::proto, "key still present"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::noent) throw;
    }
  }(h.get()));
}

TEST(Kvs, MkdirCreatesEmptyDirectory) {
  SimSession s;
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.mkdir("empty.dir");
    co_await kvs.commit();
    auto names = co_await kvs.list_dir("empty.dir");
    if (!names.empty())
      throw FluxException(Error(errc::proto, "expected empty dir"));
  }(h.get()));
}

TEST(Kvs, OverwriteReplacesValueAndBumpsVersion) {
  SimSession s;
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("k", 1);
    auto r1 = co_await kvs.commit();
    co_await kvs.put("k", 2);
    auto r2 = co_await kvs.commit();
    if (r2.version <= r1.version)
      throw FluxException(Error(errc::proto, "version not monotonic"));
    if (r2.rootref == r1.rootref)
      throw FluxException(Error(errc::proto, "root ref did not change"));
    Json v = co_await kvs.get("k");
    if (v != Json(2)) throw FluxException(Error(errc::proto, "stale value"));
  }(h.get()));
}

TEST(Kvs, ValueReplacedByDirectoryAndBack) {
  SimSession s;
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("morph", 1);
    co_await kvs.commit();
    co_await kvs.put("morph.child", 2);  // morph becomes a directory
    co_await kvs.commit();
    Json v = co_await kvs.get("morph.child");
    if (v != Json(2)) throw FluxException(Error(errc::proto, "bad child"));
    co_await kvs.put("morph", 3);  // and back to a value
    co_await kvs.commit();
    Json w = co_await kvs.get("morph");
    if (w != Json(3)) throw FluxException(Error(errc::proto, "bad morph"));
  }(h.get()));
}

TEST(Kvs, ReadYourWrites) {
  // Commit returns only after the local root has been applied: an immediate
  // get on the same handle must see the write (paper's RYW property).
  SimSession s(SimSession::default_config(16));
  auto h = s.attach(15);  // deep leaf, far from the master
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    for (int i = 0; i < 5; ++i) {
      co_await kvs.put("ryw", i);
      co_await kvs.commit();
      Json v = co_await kvs.get("ryw");
      if (v != Json(i))
        throw FluxException(Error(errc::proto, "stale read-your-write"));
    }
  }(h.get()));
}

TEST(Kvs, MonotonicReadsAcrossVersions) {
  // A reader polling a key must never observe an older value after a newer
  // one (paper's monotonic-read property).
  SimSession s(SimSession::default_config(8));
  auto writer = s.attach(7);
  auto reader = s.attach(6);
  std::vector<std::int64_t> observed;
  // Writer bumps the key 10 times; reader polls between sim slices.
  co_spawn(s.ex(), [](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    for (int i = 1; i <= 10; ++i) {
      co_await kvs.put("mono", i);
      co_await kvs.commit();
    }
  }(writer.get()), "writer");
  co_spawn(s.ex(), [](Handle* h, std::vector<std::int64_t>* obs) -> Task<void> {
    KvsClient kvs(*h);
    for (int i = 0; i < 50; ++i) {
      try {
        Json v = co_await kvs.get("mono");
        obs->push_back(v.as_int());
      } catch (const FluxException&) {
        // not yet written
      }
      co_await sleep_for(h->executor(), std::chrono::microseconds(50));
    }
  }(reader.get(), &observed), "reader");
  s.ex().run();
  for (std::size_t i = 1; i < observed.size(); ++i)
    EXPECT_GE(observed[i], observed[i - 1]) << "at poll " << i;
  ASSERT_FALSE(observed.empty());
  EXPECT_EQ(observed.back(), 10);
}

TEST(Kvs, CausalConsistencyViaWaitVersion) {
  // Process A writes and passes the version to process B out-of-band; B
  // waits for that version and must see the value (paper's causal property).
  SimSession s(SimSession::default_config(16));
  auto a = s.attach(9);
  auto b = s.attach(14);
  std::uint64_t version = 0;
  s.run([](Handle* h, std::uint64_t* out) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("causal", "payload");
    auto r = co_await kvs.commit();
    *out = r.version;
  }(a.get(), &version));
  ASSERT_GT(version, 0u);
  s.run([](Handle* h, std::uint64_t v) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.wait_version(v);
    Json value = co_await kvs.get("causal");
    if (value != Json("payload"))
      throw FluxException(Error(errc::proto, "causal read failed"));
  }(b.get(), version));
}

TEST(Kvs, FenceIsCollectiveCommit) {
  SimSession s(SimSession::default_config(8));
  std::vector<std::unique_ptr<Handle>> handles;
  std::vector<CommitResult> results(8);
  int done = 0;
  for (NodeId r = 0; r < 8; ++r) {
    handles.push_back(s.attach(r));
    co_spawn(s.ex(),
             [](Handle* h, NodeId rank, CommitResult* out, int* d) -> Task<void> {
               KvsClient kvs(*h);
               co_await kvs.put("fence.r" + std::to_string(rank), rank);
               *out = co_await kvs.fence("f1", 8);
               ++*d;
             }(handles.back().get(), r, &results[r], &done),
             "fencer");
  }
  s.ex().run();
  ASSERT_EQ(done, 8);
  // One root update covers all eight writes; everyone sees one version.
  for (NodeId r = 1; r < 8; ++r) {
    EXPECT_EQ(results[r].version, results[0].version);
    EXPECT_EQ(results[r].rootref, results[0].rootref);
  }
  // All values visible everywhere afterwards.
  auto h = s.attach(5);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    for (NodeId r = 0; r < 8; ++r) {
      Json v = co_await kvs.get("fence.r" + std::to_string(r));
      if (v != Json(r)) throw FluxException(Error(errc::proto, "bad value"));
    }
  }(h.get()));
}

TEST(Kvs, FenceDoesNotCompleteEarly) {
  SimSession s(SimSession::default_config(4));
  auto h0 = s.attach(0);
  int done = 0;
  co_spawn(s.ex(), [](Handle* h, int* d) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("early", 1);
    co_await kvs.fence("f2", 3);
    ++*d;
  }(h0.get(), &done));
  s.ex().run();
  EXPECT_EQ(done, 0);  // 1 of 3
}

TEST(Kvs, RedundantValuesDeduplicateInStore) {
  // Identical values share one content address: the master stores one
  // object regardless of producer count (Figure 3's reduction effect).
  SimSession s(SimSession::default_config(8));
  std::vector<std::unique_ptr<Handle>> handles;
  int done = 0;
  for (NodeId r = 0; r < 8; ++r) {
    handles.push_back(s.attach(r));
    co_spawn(s.ex(), [](Handle* h, NodeId rank, int* d) -> Task<void> {
      KvsClient kvs(*h);
      co_await kvs.put("dedup.k" + std::to_string(rank),
                       "identical-payload-for-everyone");
      co_await kvs.fence("f3", 8);
      ++*d;
    }(handles.back().get(), r, &done));
  }
  s.ex().run();
  ASSERT_EQ(done, 8);
  auto* master =
      dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
  ASSERT_NE(master, nullptr);
  // Objects: 1 shared value + directories. With 8 keys in one dir: empty
  // root, old root, "dedup" dir, new root, and exactly ONE value object.
  std::set<std::string> refs;
  auto h = s.attach(0);
  s.run([](Handle* hd, std::set<std::string>* out) -> Task<void> {
    KvsClient kvs(*hd);
    for (int r = 0; r < 8; ++r)
      out->insert(co_await kvs.lookup_ref("dedup.k" + std::to_string(r)));
  }(h.get(), &refs));
  EXPECT_EQ(refs.size(), 1u);  // all keys reference the same object
}

TEST(Kvs, WatchFiresOnChangeAndOnlyOnChange) {
  SimSession s(SimSession::default_config(4));
  auto watcher = s.attach(3);
  auto writer = s.attach(1);
  std::vector<std::optional<Json>> seen;
  auto kvs_watcher = std::make_unique<KvsClient>(*watcher);
  WatchHandle watch = kvs_watcher->watch(
      "watched.key", [&](const std::optional<Json>& v) { seen.push_back(v); });
  s.ex().run();
  ASSERT_EQ(seen.size(), 1u);  // initial callback: absent
  EXPECT_FALSE(seen[0].has_value());

  s.run(put_commit(writer.get(), "watched.key", "v1"));
  s.ex().run();
  ASSERT_EQ(seen.size(), 2u);
  ASSERT_TRUE(seen[1].has_value());
  EXPECT_EQ(*seen[1], Json("v1"));

  // An unrelated commit must NOT fire the watch.
  s.run(put_commit(writer.get(), "unrelated.key", 1));
  s.ex().run();
  EXPECT_EQ(seen.size(), 2u);

  s.run(put_commit(writer.get(), "watched.key", "v2"));
  s.ex().run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(*seen[2], Json("v2"));
}

TEST(Kvs, WatchOnDirectorySeesDeepChanges) {
  // Hash-tree property: "a watched directory changes if keys under it at
  // any path depth change."
  SimSession s(SimSession::default_config(4));
  auto watcher = s.attach(2);
  auto writer = s.attach(1);
  int fires = 0;
  KvsClient kvs_watcher(*watcher);
  WatchHandle watch =
      kvs_watcher.watch("tree", [&](const std::optional<Json>&) { ++fires; });
  s.ex().run();
  EXPECT_EQ(fires, 1);  // initial (absent)
  s.run(put_commit(writer.get(), "tree.a.b.c.deep", 1));
  s.ex().run();
  EXPECT_EQ(fires, 2);
  s.run(put_commit(writer.get(), "tree.a.b.c.deep", 2));
  s.ex().run();
  EXPECT_EQ(fires, 3);
}

TEST(Kvs, SlaveCachesFaultThroughTree) {
  SimSession s(SimSession::default_config(16));
  auto writer = s.attach(0);
  s.run(put_commit(writer.get(), "faulty.key", "data"));
  // A reader at a deep leaf faults the objects through interior caches.
  auto reader = s.attach(15);
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    (void)co_await kvs.get("faulty.key");
  }(reader.get()));
  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(15).find_module("kvs"));
  ASSERT_NE(leaf, nullptr);
  EXPECT_GT(leaf->op_stats().faults_issued, 0u);
  // The interior parent (rank 7 -> 3 -> 1) served and now caches the object.
  auto* interior =
      dynamic_cast<KvsModule*>(s.session().broker(7).find_module("kvs"));
  EXPECT_GT(interior->op_stats().loads_served, 0u);
  EXPECT_GT(interior->cache().count(), 0u);
}

// Acceptance for the batched read path: a cold-cache get of a depth-8 path
// must cost at least 2x fewer upstream round-trips than the sequential
// fault model (one RPC per chain object = path length + 1).
TEST(Kvs, BatchedColdGetReducesUpstreamRoundTrips) {
  SessionConfig cfg = SimSession::default_config(16);
  // No mon module: its periodic KVS polls would add background faults and
  // make the exact round-trip count nondeterministic.
  cfg.modules = {"hb", "live", "barrier", "kvs"};
  SimSession s(cfg);
  const std::string key = "d1.d2.d3.d4.d5.d6.d7.leaf";  // 8 components
  auto writer = s.attach(0);
  s.run(put_commit(writer.get(), key, "deep"));

  auto reader = s.attach(15);
  Json v = s.run([&key](Handle* h) -> Task<Json> {
    KvsClient kvs(*h);
    co_return co_await kvs.get(key);
  }(reader.get()));
  EXPECT_EQ(v, Json("deep"));

  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(15).find_module("kvs"));
  ASSERT_NE(leaf, nullptr);
  // Sequential model: root dir + 7 intermediate dirs + value = 9 RPCs.
  const std::uint64_t sequential_model = 8 + 1;
  EXPECT_LE(leaf->op_stats().faults_issued * 2, sequential_model);
  // The walk prefetch bundles the whole chain into the first round-trip.
  EXPECT_EQ(leaf->op_stats().faults_issued, 1u);
  EXPECT_EQ(leaf->op_stats().objects_faulted, sequential_model);
}

// Equivalence: the batched chain fetch must deliver exactly the objects N
// sequential faults would have (the path's chain, bit-identical to the
// master's authoritative copies) — batching changes round-trips, not state.
TEST(Kvs, BatchedLoadEquivalentToSequentialFaults) {
  SessionConfig cfg = SimSession::default_config(8);
  cfg.modules = {"hb", "live", "barrier", "kvs"};
  SimSession s(cfg);
  const std::string key = "eq.x.y.z";
  auto writer = s.attach(0);
  s.run(put_commit(writer.get(), key, Json::object({{"v", 7}})));

  auto reader = s.attach(7);
  (void)s.run([&key](Handle* h) -> Task<Json> {
    KvsClient kvs(*h);
    co_return co_await kvs.get(key);
  }(reader.get()));

  auto* master =
      dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(7).find_module("kvs"));
  ASSERT_NE(master, nullptr);
  ASSERT_NE(leaf, nullptr);

  // Walk the authoritative chain root->...->value; the slave cache must hold
  // every link, serialized identically (content addressing makes identity
  // equality), exactly as per-object faults would have produced.
  Sha1 cur = master->root_ref();
  std::vector<std::string> path = {"eq", "x", "y", "z"};
  std::size_t chain_len = 0;
  for (std::size_t i = 0;; ++i) {
    ObjPtr truth = master->store().get(cur);
    ASSERT_NE(truth, nullptr);
    ObjPtr cached = leaf->cache().peek(cur);
    ASSERT_NE(cached, nullptr) << "chain object " << i << " not cached";
    EXPECT_EQ(cached->id, truth->id);
    EXPECT_EQ(cached->doc.dump(), truth->doc.dump());
    ++chain_len;
    if (i == path.size()) break;
    ASSERT_TRUE(truth->is_dir());
    auto it = truth->entries().find(path[i]);
    ASSERT_NE(it, truth->entries().end());
    auto next = Sha1::parse(it->second.as_string());
    ASSERT_TRUE(next.has_value());
    cur = *next;
  }
  EXPECT_EQ(chain_len, path.size() + 1);
  // And the whole chain arrived in one batched round-trip.
  EXPECT_EQ(leaf->op_stats().faults_issued, 1u);
  EXPECT_EQ(leaf->op_stats().objects_faulted, chain_len);
}

TEST(Kvs, ConcurrentFaultsCoalesce) {
  SimSession s(SimSession::default_config(4));
  auto writer = s.attach(0);
  s.run(put_commit(writer.get(), "hot.key", std::string(2048, 'x')));
  // Many clients on one broker read simultaneously; the broker must issue
  // far fewer upstream faults than readers.
  std::vector<std::unique_ptr<Handle>> handles;
  int done = 0;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(s.attach(3));
    co_spawn(s.ex(), [](Handle* h, int* d) -> Task<void> {
      KvsClient kvs(*h);
      (void)co_await kvs.get("hot.key");
      ++*d;
    }(handles.back().get(), &done));
  }
  s.ex().run();
  ASSERT_EQ(done, 16);
  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(3).find_module("kvs"));
  // Root dir + value object: at most a handful of faults, not 16x2.
  EXPECT_LE(leaf->op_stats().faults_issued, 4u);
}

TEST(Kvs, CacheExpiryAfterDisuse) {
  SessionConfig cfg = SimSession::default_config(4);
  // No mon module: its periodic KVS polls would keep the root directory
  // object warm and defeat the disuse check.
  cfg.modules = {"hb", "live", "barrier", "kvs"};
  cfg.module_config =
      Json::object({{"kvs", Json::object({{"expiry_epochs", 3}})},
                    {"hb", Json::object({{"period_us", 100}})}});
  SimSession s(cfg);
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("exp.k", "v");
    co_await kvs.commit();
    (void)co_await kvs.get("exp.k");
  }(h.get()));
  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(3).find_module("kvs"));
  EXPECT_GT(leaf->cache().count(), 0u);
  // Let many heartbeats pass with no access: entries expire.
  s.settle(std::chrono::milliseconds(2));
  EXPECT_EQ(leaf->cache().count(), 0u);
}

TEST(Kvs, StatsReportShape) {
  SimSession s;
  auto h = s.attach(1);
  s.run(put_commit(h.get(), "stats.k", 5));
  Message resp = s.run(h->request("kvs.stats").call());
  EXPECT_TRUE(resp.payload().contains("cache_objects"));
  EXPECT_GE(resp.payload().get_int("puts"), 1);
  EXPECT_FALSE(resp.payload().get_bool("master"));  // rank 1 is a slave
}

TEST(Kvs, EmptyKeyRejected) {
  SimSession s;
  auto h = s.attach(0);
  try {
    s.run([](Handle* hd) -> Task<void> {
      KvsClient kvs(*hd);
      co_await kvs.put("", 1);
    }(h.get()));
    FAIL() << "expected EINVAL";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::inval);
  }
}

TEST(Kvs, CommitWithoutPutsStillAdvances) {
  SimSession s;
  auto h = s.attach(2);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    auto r = co_await kvs.commit();
    if (r.version == 0)
      throw FluxException(Error(errc::proto, "no version returned"));
  }(h.get()));
}


// ---------------------------------------------------------------------------
// Sharded masters (paper §VII, module config {"shards": k})
// ---------------------------------------------------------------------------

SessionConfig sharded_config(std::uint32_t size, std::uint32_t shards) {
  SessionConfig cfg = SimSession::default_config(size);
  cfg.module_config = Json::object(
      {{"kvs",
        Json::object({{"shards", static_cast<std::int64_t>(shards)}})}});
  return cfg;
}

TEST(KvsSharded, CommitGetAcrossRanksAndShards) {
  SimSession s(sharded_config(8, 4));
  auto writer = s.attach(7);
  CommitResult res = s.run([](Handle* h) -> Task<CommitResult> {
    KvsClient kvs(*h);
    // Distinct top-level directories scatter across the four shards.
    for (int d = 0; d < 8; ++d)
      co_await kvs.put("dir" + std::to_string(d) + ".k", d);
    co_return co_await kvs.commit();
  }(writer.get()));
  ASSERT_EQ(res.vv.size(), 4u);
  std::uint64_t sum = 0;
  for (std::uint64_t v : res.vv) sum += v;
  EXPECT_EQ(res.version, sum);  // scalar version mirrors the vector

  auto reader = s.attach(5);
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    for (int d = 0; d < 8; ++d) {
      Json v = co_await kvs.get("dir" + std::to_string(d) + ".k");
      if (v != Json(d)) throw FluxException(Error(errc::proto, "bad value"));
    }
    // Root listing is the union of every shard's top level (plus what the
    // resvc module publishes).
    auto names = co_await kvs.list_dir(".");
    for (int d = 0; d < 8; ++d) {
      const std::string want = "dir" + std::to_string(d);
      if (std::find(names.begin(), names.end(), want) == names.end())
        throw FluxException(Error(errc::proto, "missing " + want));
    }
  }(reader.get()));
}

TEST(KvsSharded, TuplesLandOnOwningShardsOnly) {
  SimSession s(sharded_config(8, 4));
  auto h = s.attach(6);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    for (int d = 0; d < 12; ++d)
      co_await kvs.put("t" + std::to_string(d) + ".v", d);
    co_await kvs.commit();
  }(h.get()));
  auto* root =
      dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
  ASSERT_NE(root, nullptr);
  ASSERT_TRUE(root->sharded());
  const ShardMap& map = root->shard_map();
  // Each shard master's store holds exactly its own top-level dirs: its root
  // object lists precisely the keys the ShardMap routes to it.
  for (std::uint32_t sh = 0; sh < 4; ++sh) {
    auto* master = dynamic_cast<KvsModule*>(
        s.session().broker(map.master_rank(sh)).find_module("kvs"));
    ASSERT_NE(master, nullptr);
    ASSERT_EQ(master->my_shard(), std::optional<std::uint32_t>(sh));
  }
  std::set<std::uint32_t> owners;
  for (int d = 0; d < 12; ++d)
    owners.insert(map.shard_of("t" + std::to_string(d) + ".v"));
  EXPECT_GT(owners.size(), 1u) << "12 dirs all hashed to one shard";
}

TEST(KvsSharded, FenceCrossShardVisibility) {
  SimSession s(sharded_config(8, 4));
  std::vector<std::unique_ptr<Handle>> handles;
  std::vector<CommitResult> results(8);
  int done = 0;
  for (NodeId r = 0; r < 8; ++r) {
    handles.push_back(s.attach(r));
    co_spawn(
        s.ex(),
        [](Handle* h, NodeId rank, CommitResult* out, int* d) -> Task<void> {
          KvsClient kvs(*h);
          co_await kvs.put("sf" + std::to_string(rank) + ".val", rank);
          *out = co_await kvs.fence("shard-fence", 8);
          ++*d;
        }(handles.back().get(), r, &results[r], &done),
        "fencer");
  }
  s.ex().run();
  ASSERT_EQ(done, 8);
  for (NodeId r = 0; r < 8; ++r) ASSERT_EQ(results[r].vv.size(), 4u);
  // The fused version vector is identical for every participant.
  for (NodeId r = 1; r < 8; ++r) EXPECT_EQ(results[r].vv, results[0].vv);
  // After the fence response, every rank sees EVERY shard's writes
  // (read-your-writes + cross-shard fence visibility) without settling.
  for (NodeId r = 0; r < 8; ++r) {
    s.run([](Handle* h, NodeId rank) -> Task<void> {
      KvsClient kvs(*h);
      for (NodeId w = 0; w < 8; ++w) {
        Json v = co_await kvs.get("sf" + std::to_string(w) + ".val");
        if (v != Json(w))
          throw FluxException(Error(errc::proto,
                                    "rank " + std::to_string(rank) +
                                        " missed write " + std::to_string(w)));
      }
    }(handles[r].get(), r));
  }
}

TEST(KvsSharded, PerShardMonotonicReads) {
  SimSession s(sharded_config(8, 4));
  auto writer = s.attach(3);
  // Commit the same shard repeatedly; every observer's view of that shard
  // must move through versions in order (never backwards).
  std::vector<std::uint64_t> seen;
  auto* leaf =
      dynamic_cast<KvsModule*>(s.session().broker(6).find_module("kvs"));
  ASSERT_NE(leaf, nullptr);
  const std::uint32_t shard = leaf->shard_map().shard_of("mono.k");
  for (int i = 0; i < 5; ++i) {
    s.run([](Handle* h, int val) -> Task<void> {
      KvsClient kvs(*h);
      co_await kvs.put("mono.k", val);
      co_await kvs.commit();
    }(writer.get(), i));
    s.settle(std::chrono::microseconds(500));
    seen.push_back(leaf->shard_versions()[shard]);
  }
  for (std::size_t i = 1; i < seen.size(); ++i)
    EXPECT_LE(seen[i - 1], seen[i]) << "shard version went backwards";
  EXPECT_GE(seen.back(), 5u);  // bootstrap + 5 commits reached rank 6
}

TEST(KvsSharded, SingleShardConfigMatchesLegacy) {
  // shards=1 must degrade to the classic single-master layout: no vv in
  // responses, same stats shape, master on the session root.
  SimSession s(sharded_config(8, 1));
  auto h = s.attach(4);
  CommitResult res = s.run([](Handle* hd) -> Task<CommitResult> {
    KvsClient kvs(*hd);
    co_await kvs.put("legacy.k", 1);
    co_return co_await kvs.commit();
  }(h.get()));
  EXPECT_TRUE(res.vv.empty());
  Message stats = s.run(h->request("kvs.stats").call());
  EXPECT_FALSE(stats.payload().contains("vv"));
  EXPECT_FALSE(stats.payload().contains("shards"));
  auto* root =
      dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
  EXPECT_FALSE(root->sharded());
  EXPECT_TRUE(root->is_master());
}

TEST(KvsSharded, CausalAcrossShardsViaWaitVersion) {
  SimSession s(sharded_config(8, 4));
  auto w = s.attach(1);
  // Writer commits, passes the resulting scalar version to a reader on
  // another rank; the reader waits for it, then must see the write.
  CommitResult res = s.run([](Handle* h) -> Task<CommitResult> {
    KvsClient kvs(*h);
    co_await kvs.put("causal.x", 99);
    co_return co_await kvs.commit();
  }(w.get()));
  auto r = s.attach(6);
  s.run([](Handle* h, std::uint64_t version) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.wait_version(version);
    Json v = co_await kvs.get("causal.x");
    if (v != Json(99))
      throw FluxException(Error(errc::proto, "stale read after wait"));
  }(r.get(), res.version));
}

}  // namespace
}  // namespace flux
