// Model-based property test: random KVS operation sequences executed on a
// full simulated session must match a flat reference model at every commit
// point, across topologies, client placements and value shapes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/rng.hpp"
#include "kvs/kvs_module.hpp"
#include "sim_fixture.hpp"
#include "test_seed.hpp"

// Every Rng below mixes in FLUX_TEST_SEED (test_seed.hpp, default 1), so one
// knob re-rolls the whole randomized surface; SCOPED_TRACE prints the
// effective seed on failure.

namespace flux {
namespace {

using testing::SimSession;

struct Params {
  std::uint32_t size;
  std::uint32_t arity;
  std::uint64_t seed;
};

class KvsModelTest : public ::testing::TestWithParam<Params> {};

/// Reference semantics of the hierarchical keyspace: a put of key K removes
/// any value at a strict prefix of K (the prefix becomes a directory) and
/// any value at a strict extension of K (K becomes a value); an unlink
/// removes K and everything below it.
class RefModel {
 public:
  void put(const std::string& key, Json value) {
    erase_related(key);
    map_[key] = std::move(value);
  }
  void unlink(const std::string& key) {
    std::erase_if(map_, [&](const auto& kv) {
      return kv.first == key || is_prefix(key, kv.first);
    });
  }
  [[nodiscard]] const std::map<std::string, Json>& entries() const {
    return map_;
  }

 private:
  static bool is_prefix(const std::string& dir, const std::string& key) {
    return key.size() > dir.size() && key.compare(0, dir.size(), dir) == 0 &&
           key[dir.size()] == '.';
  }
  void erase_related(const std::string& key) {
    std::erase_if(map_, [&](const auto& kv) {
      return is_prefix(key, kv.first) || is_prefix(kv.first, key);
    });
  }
  std::map<std::string, Json> map_;
};

std::string random_key(Rng& rng) {
  static const char* parts[] = {"app", "lwj", "x", "cfg", "deep", "k1", "k2"};
  std::string key;
  const auto depth = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < depth; ++i) {
    if (i) key += '.';
    key += parts[rng.below(std::size(parts))];
  }
  return key;
}

Json random_value(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return Json(static_cast<std::int64_t>(rng()));
    case 1: return Json(rng.bytes(rng.below(64)));
    case 2: return Json::array({Json(1), Json(rng.bytes(4))});
    default: return Json::object({{"n", rng.uniform()}});
  }
}

TEST_P(KvsModelTest, RandomOpsMatchReferenceModel) {
  const Params p = GetParam();
  const std::uint64_t seed = p.seed + testing::test_seed();
  SCOPED_TRACE(::testing::Message() << "property seed " << seed);
  SimSession s(SimSession::default_config(p.size, p.arity));
  Rng rng(seed);
  RefModel ref;

  // A writer on a random broker per round; readers scattered.
  for (int round = 0; round < 12; ++round) {
    auto writer = s.attach(static_cast<NodeId>(rng.below(p.size)));
    // 1-6 mutations, then one commit.
    const auto nops = 1 + rng.below(6);
    std::vector<std::pair<std::string, std::optional<Json>>> ops;
    for (std::uint64_t i = 0; i < nops; ++i) {
      const std::string key = random_key(rng);
      if (rng.below(5) == 0) {
        ops.emplace_back(key, std::nullopt);  // unlink
      } else {
        ops.emplace_back(key, random_value(rng));
      }
    }
    s.run([](Handle* h,
             std::vector<std::pair<std::string, std::optional<Json>>>* batch)
              -> Task<void> {
      KvsClient kvs(*h);
      for (auto& [key, value] : *batch) {
        if (value)
          co_await kvs.put(key, *value);
        else
          co_await kvs.unlink(key);
      }
      co_await kvs.commit();
    }(writer.get(), &ops));
    for (auto& [key, value] : ops) {
      if (value)
        ref.put(key, *value);
      else
        ref.unlink(key);
    }

    // Verify the whole reference model from a random reader.
    auto reader = s.attach(static_cast<NodeId>(rng.below(p.size)));
    s.run([](Handle* h, const RefModel* model) -> Task<void> {
      KvsClient kvs(*h);
      for (const auto& [key, expect] : model->entries()) {
        Json got = co_await kvs.get(key);
        if (got != expect)
          throw FluxException(
              Error(errc::proto, "model mismatch at key '" + key + "'"));
      }
    }(reader.get(), &ref));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, KvsModelTest,
    ::testing::Values(Params{1, 2, 11}, Params{2, 2, 22}, Params{5, 2, 33},
                      Params{8, 2, 44}, Params{8, 4, 55}, Params{16, 2, 66},
                      Params{16, 16, 77}, Params{33, 3, 88}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      return "n" + std::to_string(param_info.param.size) + "a" +
             std::to_string(param_info.param.arity);
    });

TEST(KvsProperty, ValueShapesRoundTripExactly) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  const std::vector<Json> shapes = {
      Json(),                                  // null value
      Json(true),
      Json(-9007199254740993LL),               // beyond double precision
      Json(0.1),
      Json(""),
      Json(std::string(100000, 'q')),          // 100 KB string
      Json::array(),
      Json::object(),
      Json::object({{"nested", Json::array({Json::object({{"x", 1}})})}}),
      Json("utf8: \xc3\xa9\xe4\xb8\xad"),
  };
  s.run([](Handle* hd, const std::vector<Json>* values) -> Task<void> {
    KvsClient kvs(*hd);
    for (std::size_t i = 0; i < values->size(); ++i)
      co_await kvs.put("shape.k" + std::to_string(i), (*values)[i]);
    co_await kvs.commit();
    for (std::size_t i = 0; i < values->size(); ++i) {
      Json got = co_await kvs.get("shape.k" + std::to_string(i));
      if (got != (*values)[i])
        throw FluxException(
            Error(errc::proto, "shape " + std::to_string(i) + " mutated"));
    }
  }(h.get(), &shapes));
}

TEST(KvsProperty, InterleavedFencesFromDisjointGroups) {
  // Two disjoint fence groups run concurrently; both must complete and both
  // key sets must be fully visible afterwards.
  SimSession s(SimSession::default_config(8));
  std::vector<std::unique_ptr<Handle>> handles;
  int done = 0;
  for (int g = 0; g < 2; ++g) {
    for (int p = 0; p < 6; ++p) {
      handles.push_back(s.attach(static_cast<NodeId>((g * 6 + p) % 8)));
      co_spawn(s.ex(),
               [](Handle* h, int group, int proc, int* d) -> Task<void> {
                 KvsClient kvs(*h);
                 co_await kvs.put("g" + std::to_string(group) + ".k" +
                                      std::to_string(proc),
                                  proc);
                 co_await kvs.fence("fence-g" + std::to_string(group), 6);
                 ++*d;
               }(handles.back().get(), g, p, &done),
               "fencer");
    }
  }
  s.ex().run();
  ASSERT_EQ(done, 12);
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    for (int g = 0; g < 2; ++g)
      for (int p = 0; p < 6; ++p) {
        Json v = co_await kvs.get("g" + std::to_string(g) + ".k" +
                                  std::to_string(p));
        if (v != Json(p)) throw FluxException(Error(errc::proto, "lost key"));
      }
  }(h.get()));
}

TEST(KvsProperty, LastCommitWinsOnConflict) {
  SimSession s(SimSession::default_config(4));
  auto a = s.attach(1);
  auto b = s.attach(2);
  // Sequential conflicting commits: the later one wins.
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("conflict", "first");
    co_await kvs.commit();
  }(a.get()));
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("conflict", "second");
    co_await kvs.commit();
  }(b.get()));
  Json v = s.run([](Handle* h) -> Task<Json> {
    KvsClient kvs(*h);
    co_return co_await kvs.get("conflict");
  }(a.get()));
  EXPECT_EQ(v, Json("second"));
}


// ---------------------------------------------------------------------------
// Shard routing invariants (ShardMap, paper §VII)
// ---------------------------------------------------------------------------

TEST(ShardMapProperty, EveryKeyRoutesToExactlyOneShard) {
  const std::uint64_t seed = 0xfeedULL + testing::test_seed();
  SCOPED_TRACE(::testing::Message() << "property seed " << seed);
  Rng rng(seed);
  for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 7u, 8u}) {
    ShardMap map(/*size=*/8, shards, /*arity=*/2);
    for (int i = 0; i < 500; ++i) {
      const std::string key = random_key(rng);
      const std::uint32_t s = map.shard_of(key);
      EXPECT_LT(s, map.shards()) << key;
      // Deterministic: an identically-parameterized map (as every broker
      // builds independently) must agree.
      ShardMap replica(8, shards, 2);
      EXPECT_EQ(replica.shard_of(key), s) << key;
    }
  }
}

TEST(ShardMapProperty, RoutingDependsOnlyOnTopLevelDirectory) {
  // Everything under one top-level directory co-locates on one shard, no
  // matter how deep the key or what other keys exist.
  const std::uint64_t seed = 0xbeefULL + testing::test_seed();
  SCOPED_TRACE(::testing::Message() << "property seed " << seed);
  Rng rng(seed);
  ShardMap map(16, 4, 2);
  for (int i = 0; i < 200; ++i) {
    const std::string top = "dir" + std::to_string(rng.below(50));
    const std::uint32_t s = map.shard_of(top);
    EXPECT_EQ(map.shard_of(top + ".a"), s);
    EXPECT_EQ(map.shard_of(top + ".deep.er.leaf"), s);
    EXPECT_EQ(map.shard_of(top + "." + random_key(rng)), s);
  }
}

TEST(ShardMapProperty, SingleShardRoutesEverythingToRoot) {
  const std::uint64_t seed = 0x5151ULL + testing::test_seed();
  SCOPED_TRACE(::testing::Message() << "property seed " << seed);
  Rng rng(seed);
  ShardMap map(32, 1, 2);
  EXPECT_EQ(map.master_rank(0), 0u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(map.shard_of(random_key(rng)), 0u);
  }
  // Default-constructed (the inert shards_=1 state) behaves identically.
  ShardMap inert;
  EXPECT_EQ(inert.shards(), 1u);
  EXPECT_EQ(inert.shard_of("anything.at.all"), 0u);
}

TEST(ShardMapProperty, MasterRanksAreDistinctAndShardZeroIsRoot) {
  for (const std::uint32_t size : {4u, 8u, 16u, 33u}) {
    for (std::uint32_t shards = 1; shards <= std::min(size, 8u); ++shards) {
      ShardMap map(size, shards, 2);
      std::set<NodeId> masters;
      for (std::uint32_t s = 0; s < shards; ++s) {
        const NodeId m = map.master_rank(s);
        EXPECT_LT(m, size);
        masters.insert(m);
        EXPECT_EQ(map.shard_of_master(m), std::optional<std::uint32_t>(s));
      }
      EXPECT_EQ(masters.size(), shards) << "master ranks collide";
      EXPECT_EQ(map.master_rank(0), 0u) << "shard 0 must stay on the root";
    }
  }
}

TEST(ShardMapProperty, RendezvousGrowthOnlyMovesKeysToNewShard) {
  // Rendezvous hashing's minimal-disruption property: going from k to k+1
  // shards, a key either stays put or moves to the NEW shard — never
  // between old shards.
  const std::uint64_t seed = 0xabcdULL + testing::test_seed();
  SCOPED_TRACE(::testing::Message() << "property seed " << seed);
  Rng rng(seed);
  for (std::uint32_t k = 1; k < 6; ++k) {
    ShardMap before(16, k, 2);
    ShardMap after(16, k + 1, 2);
    for (int i = 0; i < 300; ++i) {
      const std::string key = random_key(rng);
      const std::uint32_t s0 = before.shard_of(key);
      const std::uint32_t s1 = after.shard_of(key);
      if (s1 != s0) {
        EXPECT_EQ(s1, k) << key << " moved between old shards";
      }
    }
  }
}

TEST(ShardMapProperty, PerShardTreeReachesMasterFromEveryRank) {
  for (const std::uint32_t size : {4u, 8u, 15u}) {
    for (const std::uint32_t shards : {2u, 3u, 4u}) {
      for (const std::uint32_t arity : {2u, 3u}) {
        ShardMap map(size, shards, arity);
        for (std::uint32_t s = 0; s < shards; ++s) {
          const NodeId master = map.master_rank(s);
          EXPECT_FALSE(map.parent(s, master).has_value());
          for (NodeId r = 0; r < size; ++r) {
            // Climbing parents terminates at the master within `size` hops
            // and never revisits a rank (the relabeled tree is acyclic).
            std::set<NodeId> visited;
            NodeId cur = r;
            while (cur != master) {
              ASSERT_TRUE(visited.insert(cur).second)
                  << "cycle at rank " << cur;
              auto up = map.parent(s, cur);
              ASSERT_TRUE(up.has_value()) << "dead end at rank " << cur;
              ASSERT_LT(*up, size);
              cur = *up;
              ASSERT_LE(visited.size(), size);
            }
          }
        }
      }
    }
  }
}

TEST(ShardMapProperty, ShardAssignmentIgnoresTreeShapeAndSessionSize) {
  // Rendezvous stability under rank relabeling: which shard owns a key is a
  // pure function of the key's top-level directory and the shard count. The
  // session size, the reduction-tree arity, and (after a failover) which
  // rank currently masters the shard never move keys between shards.
  const std::uint64_t seed = 0x5eedULL + testing::test_seed();
  SCOPED_TRACE(::testing::Message() << "property seed " << seed);
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    const std::string key = random_key(rng);
    for (const std::uint32_t shards : {2u, 3u, 5u}) {
      const std::uint32_t expected = ShardMap(8, shards, 2).shard_of(key);
      for (const std::uint32_t size : {8u, 16u, 31u})
        for (const std::uint32_t arity : {2u, 3u})
          EXPECT_EQ(ShardMap(size, shards, arity).shard_of(key), expected)
              << key << " with " << shards << " shards";
    }
  }
}

TEST(ShardMapProperty, FailoverParentOverloadMatchesStaticMaster) {
  // parent(s, r) is defined as parent(s, r, master_rank(s)); the failover
  // overload must agree wherever the static master is still in charge.
  for (const std::uint32_t size : {4u, 8u, 15u}) {
    ShardMap map(size, 3, 2);
    for (std::uint32_t s = 0; s < map.shards(); ++s)
      for (NodeId r = 0; r < size; ++r)
        EXPECT_EQ(map.parent(s, r), map.parent(s, r, map.master_rank(s)))
            << "shard " << s << " rank " << r;
  }
}

TEST(ShardMapProperty, RelabeledTreeReachesAnyPromotedMaster) {
  // After a failover promotes an arbitrary successor, every broker re-derives
  // the shard tree around the new master. Whatever rank is promoted, the
  // relabeled tree stays a rooted acyclic heap: climbing from any rank
  // terminates at the master within `size` hops.
  for (const std::uint32_t size : {5u, 8u, 13u}) {
    for (const std::uint32_t arity : {2u, 3u}) {
      ShardMap map(size, 2, arity);
      for (NodeId master = 0; master < size; ++master) {
        EXPECT_FALSE(map.parent(1, master, master).has_value());
        for (NodeId r = 0; r < size; ++r) {
          std::set<NodeId> visited;
          NodeId cur = r;
          while (cur != master) {
            ASSERT_TRUE(visited.insert(cur).second) << "cycle at " << cur;
            auto up = map.parent(1, cur, master);
            ASSERT_TRUE(up.has_value()) << "dead end at " << cur;
            ASSERT_LT(*up, size);
            cur = *up;
            ASSERT_LE(visited.size(), size);
          }
        }
      }
    }
  }
}

TEST(ShardMapProperty, RelabelingIsAPureRotation) {
  // The failover tree is the heap tree relabeled by rotating ranks so the
  // master sits at logical 0: parent(s, r, m) == rotate(heap_parent(lid))
  // where lid = (r - m) mod size. Pin the closed form so the module-side
  // copy in KvsModule::shard_parent_live can't drift from the map.
  const std::uint32_t size = 11, arity = 3;
  ShardMap map(size, 2, arity);
  for (NodeId master = 0; master < size; ++master) {
    for (NodeId r = 0; r < size; ++r) {
      const std::uint32_t lid = (r + size - master) % size;
      const auto got = map.parent(1, r, master);
      if (lid == 0) {
        EXPECT_FALSE(got.has_value());
      } else {
        const std::uint32_t parent_lid = (lid - 1) / arity;
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, (parent_lid + master) % size)
            << "master " << master << " rank " << r;
      }
    }
  }
}

TEST(ShardMapProperty, KeysSpreadAcrossShards) {
  // Not a strict balance bound — just that rendezvous hashing actually
  // spreads distinct top-level directories over every shard.
  ShardMap map(16, 4, 2);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 400; ++i)
    ++counts[map.shard_of("lwj" + std::to_string(i))];
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [shard, n] : counts)
    EXPECT_GT(n, 40) << "shard " << shard << " starved";
}

}  // namespace
}  // namespace flux
