// Model-based property test: random KVS operation sequences executed on a
// full simulated session must match a flat reference model at every commit
// point, across topologies, client placements and value shapes.
#include <gtest/gtest.h>

#include <map>

#include "base/rng.hpp"
#include "kvs/kvs_module.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

struct Params {
  std::uint32_t size;
  std::uint32_t arity;
  std::uint64_t seed;
};

class KvsModelTest : public ::testing::TestWithParam<Params> {};

/// Reference semantics of the hierarchical keyspace: a put of key K removes
/// any value at a strict prefix of K (the prefix becomes a directory) and
/// any value at a strict extension of K (K becomes a value); an unlink
/// removes K and everything below it.
class RefModel {
 public:
  void put(const std::string& key, Json value) {
    erase_related(key);
    map_[key] = std::move(value);
  }
  void unlink(const std::string& key) {
    std::erase_if(map_, [&](const auto& kv) {
      return kv.first == key || is_prefix(key, kv.first);
    });
  }
  [[nodiscard]] const std::map<std::string, Json>& entries() const {
    return map_;
  }

 private:
  static bool is_prefix(const std::string& dir, const std::string& key) {
    return key.size() > dir.size() && key.compare(0, dir.size(), dir) == 0 &&
           key[dir.size()] == '.';
  }
  void erase_related(const std::string& key) {
    std::erase_if(map_, [&](const auto& kv) {
      return is_prefix(key, kv.first) || is_prefix(kv.first, key);
    });
  }
  std::map<std::string, Json> map_;
};

std::string random_key(Rng& rng) {
  static const char* parts[] = {"app", "lwj", "x", "cfg", "deep", "k1", "k2"};
  std::string key;
  const auto depth = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < depth; ++i) {
    if (i) key += '.';
    key += parts[rng.below(std::size(parts))];
  }
  return key;
}

Json random_value(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return Json(static_cast<std::int64_t>(rng()));
    case 1: return Json(rng.bytes(rng.below(64)));
    case 2: return Json::array({Json(1), Json(rng.bytes(4))});
    default: return Json::object({{"n", rng.uniform()}});
  }
}

TEST_P(KvsModelTest, RandomOpsMatchReferenceModel) {
  const Params p = GetParam();
  SimSession s(SimSession::default_config(p.size, p.arity));
  Rng rng(p.seed);
  RefModel ref;

  // A writer on a random broker per round; readers scattered.
  for (int round = 0; round < 12; ++round) {
    auto writer = s.attach(static_cast<NodeId>(rng.below(p.size)));
    // 1-6 mutations, then one commit.
    const auto nops = 1 + rng.below(6);
    std::vector<std::pair<std::string, std::optional<Json>>> ops;
    for (std::uint64_t i = 0; i < nops; ++i) {
      const std::string key = random_key(rng);
      if (rng.below(5) == 0) {
        ops.emplace_back(key, std::nullopt);  // unlink
      } else {
        ops.emplace_back(key, random_value(rng));
      }
    }
    s.run([](Handle* h,
             std::vector<std::pair<std::string, std::optional<Json>>>* batch)
              -> Task<void> {
      KvsClient kvs(*h);
      for (auto& [key, value] : *batch) {
        if (value)
          co_await kvs.put(key, *value);
        else
          co_await kvs.unlink(key);
      }
      co_await kvs.commit();
    }(writer.get(), &ops));
    for (auto& [key, value] : ops) {
      if (value)
        ref.put(key, *value);
      else
        ref.unlink(key);
    }

    // Verify the whole reference model from a random reader.
    auto reader = s.attach(static_cast<NodeId>(rng.below(p.size)));
    s.run([](Handle* h, const RefModel* model) -> Task<void> {
      KvsClient kvs(*h);
      for (const auto& [key, expect] : model->entries()) {
        Json got = co_await kvs.get(key);
        if (got != expect)
          throw FluxException(
              Error(Errc::Proto, "model mismatch at key '" + key + "'"));
      }
    }(reader.get(), &ref));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, KvsModelTest,
    ::testing::Values(Params{1, 2, 11}, Params{2, 2, 22}, Params{5, 2, 33},
                      Params{8, 2, 44}, Params{8, 4, 55}, Params{16, 2, 66},
                      Params{16, 16, 77}, Params{33, 3, 88}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      return "n" + std::to_string(param_info.param.size) + "a" +
             std::to_string(param_info.param.arity);
    });

TEST(KvsProperty, ValueShapesRoundTripExactly) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  const std::vector<Json> shapes = {
      Json(),                                  // null value
      Json(true),
      Json(-9007199254740993LL),               // beyond double precision
      Json(0.1),
      Json(""),
      Json(std::string(100000, 'q')),          // 100 KB string
      Json::array(),
      Json::object(),
      Json::object({{"nested", Json::array({Json::object({{"x", 1}})})}}),
      Json("utf8: \xc3\xa9\xe4\xb8\xad"),
  };
  s.run([](Handle* hd, const std::vector<Json>* values) -> Task<void> {
    KvsClient kvs(*hd);
    for (std::size_t i = 0; i < values->size(); ++i)
      co_await kvs.put("shape.k" + std::to_string(i), (*values)[i]);
    co_await kvs.commit();
    for (std::size_t i = 0; i < values->size(); ++i) {
      Json got = co_await kvs.get("shape.k" + std::to_string(i));
      if (got != (*values)[i])
        throw FluxException(
            Error(Errc::Proto, "shape " + std::to_string(i) + " mutated"));
    }
  }(h.get(), &shapes));
}

TEST(KvsProperty, InterleavedFencesFromDisjointGroups) {
  // Two disjoint fence groups run concurrently; both must complete and both
  // key sets must be fully visible afterwards.
  SimSession s(SimSession::default_config(8));
  std::vector<std::unique_ptr<Handle>> handles;
  int done = 0;
  for (int g = 0; g < 2; ++g) {
    for (int p = 0; p < 6; ++p) {
      handles.push_back(s.attach(static_cast<NodeId>((g * 6 + p) % 8)));
      co_spawn(s.ex(),
               [](Handle* h, int group, int proc, int* d) -> Task<void> {
                 KvsClient kvs(*h);
                 co_await kvs.put("g" + std::to_string(group) + ".k" +
                                      std::to_string(proc),
                                  proc);
                 co_await kvs.fence("fence-g" + std::to_string(group), 6);
                 ++*d;
               }(handles.back().get(), g, p, &done),
               "fencer");
    }
  }
  s.ex().run();
  ASSERT_EQ(done, 12);
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    for (int g = 0; g < 2; ++g)
      for (int p = 0; p < 6; ++p) {
        Json v = co_await kvs.get("g" + std::to_string(g) + ".k" +
                                  std::to_string(p));
        if (v != Json(p)) throw FluxException(Error(Errc::Proto, "lost key"));
      }
  }(h.get()));
}

TEST(KvsProperty, LastCommitWinsOnConflict) {
  SimSession s(SimSession::default_config(4));
  auto a = s.attach(1);
  auto b = s.attach(2);
  // Sequential conflicting commits: the later one wins.
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("conflict", "first");
    co_await kvs.commit();
  }(a.get()));
  s.run([](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    co_await kvs.put("conflict", "second");
    co_await kvs.commit();
  }(b.get()));
  Json v = s.run([](Handle* h) -> Task<Json> {
    KvsClient kvs(*h);
    co_return co_await kvs.get("conflict");
  }(a.get()));
  EXPECT_EQ(v, Json("second"));
}

}  // namespace
}  // namespace flux
