// Table-I comms modules: hb, live, log, mon, group.
#include <gtest/gtest.h>

#include "modules/hb.hpp"
#include "modules/live.hpp"
#include "modules/logmod.hpp"
#include "modules/mon.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

SessionConfig fast_hb_config(std::uint32_t size) {
  SessionConfig cfg = SimSession::default_config(size);
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 100}})}});
  return cfg;
}

// ---------------------------------------------------------------------------
// hb
// ---------------------------------------------------------------------------

TEST(Heartbeat, EpochAdvancesEverywhere) {
  SimSession s(fast_hb_config(8));
  s.settle(std::chrono::microseconds(1050));
  for (NodeId r = 0; r < 8; ++r) {
    auto* hb = dynamic_cast<modules::Heartbeat*>(
        s.session().broker(r).find_module("hb"));
    ASSERT_NE(hb, nullptr);
    EXPECT_GE(hb->epoch(), 8u) << "rank " << r;
  }
}

TEST(Heartbeat, GetReportsEpoch) {
  SimSession s(fast_hb_config(4));
  s.settle(std::chrono::microseconds(500));
  auto h = s.attach(2);
  Message resp = s.run(h->request("hb.get").call());
  EXPECT_GE(resp.payload().get_int("epoch"), 3);
  EXPECT_EQ(resp.payload().get_int("period_us"), 100);
}

TEST(Heartbeat, EventsCarryMonotoneEpochs) {
  SimSession s(fast_hb_config(4));
  auto h = s.attach(3);
  std::vector<std::int64_t> epochs;
  Subscription sub = h->subscribe("hb", [&](const Message& ev) {
    epochs.push_back(ev.payload().get_int("epoch"));
  });
  s.settle(std::chrono::milliseconds(1));
  ASSERT_GE(epochs.size(), 5u);
  for (std::size_t i = 1; i < epochs.size(); ++i)
    EXPECT_EQ(epochs[i], epochs[i - 1] + 1);
}

// ---------------------------------------------------------------------------
// live
// ---------------------------------------------------------------------------

TEST(Live, HealthySessionReportsNoDeaths) {
  SimSession s(fast_hb_config(8));
  s.settle(std::chrono::milliseconds(2));
  for (NodeId r = 0; r < 8; ++r) {
    auto* live =
        dynamic_cast<modules::Live*>(s.session().broker(r).find_module("live"));
    ASSERT_NE(live, nullptr);
    EXPECT_TRUE(live->dead().empty()) << "rank " << r;
  }
}

TEST(Live, DetectsDeadChildAndPublishesDown) {
  SimSession s(fast_hb_config(8));
  auto h = s.attach(0);
  std::vector<std::int64_t> down;
  Subscription sub = h->subscribe("live.down", [&](const Message& ev) {
    down.push_back(ev.payload().get_int("rank"));
  });
  s.settle(std::chrono::milliseconds(1));
  s.session().fail(6);  // child of rank 2
  s.settle(std::chrono::milliseconds(2));
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], 6);
  auto* live =
      dynamic_cast<modules::Live*>(s.session().broker(2).find_module("live"));
  EXPECT_TRUE(live->dead().contains(6));
}

TEST(Live, StatusRpc) {
  SimSession s(fast_hb_config(4));
  s.settle(std::chrono::milliseconds(1));
  auto h = s.attach(0);
  Message resp = s.run(h->request("live.status").to(0).call());
  EXPECT_EQ(resp.payload().get_int("monitored"), 2);  // children 1 and 2
  EXPECT_EQ(resp.payload().at("down").size(), 0u);
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

TEST(Log, RecordsReduceToSessionRoot) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(5);
  s.run([](Handle* hd) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      Json rec = Json::object({{"level", 4},
                               {"component", "test"},
                               {"text", "warning " + std::to_string(i)}});
      co_await hd->request("log.append").payload(std::move(rec)).call();
    }
  }(h.get()));
  s.ex().run();
  auto* root_log =
      dynamic_cast<modules::Log*>(s.session().broker(0).find_module("log"));
  ASSERT_NE(root_log, nullptr);
  ASSERT_GE(root_log->session_log().size(), 3u);
  EXPECT_EQ(root_log->session_log().back().rank, 5u);
  EXPECT_EQ(root_log->session_log().back().component, "test");
}

TEST(Log, ForwardLevelFiltersDebugRecords) {
  SessionConfig cfg = SimSession::default_config(4);
  cfg.module_config =
      Json::object({{"log", Json::object({{"forward_level", 4}})}});
  SimSession s(cfg);
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    Json dbg = Json::object(
        {{"level", 7}, {"component", "t"}, {"text", "debug noise"}});
    co_await hd->request("log.append").payload(std::move(dbg)).call();
    Json err = Json::object(
        {{"level", 3}, {"component", "t"}, {"text", "real error"}});
    co_await hd->request("log.append").payload(std::move(err)).call();
  }(h.get()));
  s.ex().run();
  auto* root_log =
      dynamic_cast<modules::Log*>(s.session().broker(0).find_module("log"));
  ASSERT_EQ(root_log->session_log().size(), 1u);
  EXPECT_EQ(root_log->session_log()[0].text, "real error");
}

TEST(Log, GetReturnsRecentRecords) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  s.run([](Handle* hd) -> Task<void> {
    Json rec = Json::object(
        {{"level", 3}, {"component", "c"}, {"text", "hello log"}});
    co_await hd->request("log.append").payload(std::move(rec)).call();
    Json query = Json::object({{"max", 10}});
    Message resp = co_await hd->request("log.get").payload(std::move(query)).call();
    if (resp.payload().at("records").size() < 1)
      throw FluxException(Error(errc::proto, "no records returned"));
  }(h.get()));
}

TEST(Log, DumpReturnsLocalRing) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    Json rec = Json::object(
        {{"level", 7}, {"component", "c"}, {"text", "ring entry"}});
    co_await hd->request("log.append").payload(std::move(rec)).call();
    // Rank-addressed: this broker's ring buffer.
    Message resp = co_await hd->request("log.dump").to(3).call();
    if (resp.payload().get_int("rank") != 3)
      throw FluxException(Error(errc::proto, "wrong rank"));
    if (resp.payload().at("records").size() < 1)
      throw FluxException(Error(errc::proto, "empty ring"));
  }(h.get()));
}

TEST(Log, FaultEventDumpsContext) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  // A debug record that would normally NOT be forwarded...
  s.run([](Handle* hd) -> Task<void> {
    Json rec = Json::object(
        {{"level", 7}, {"component", "c"}, {"text", "pre-fault context"}});
    co_await hd->request("log.append").payload(std::move(rec)).call();
  }(h.get()));
  auto* root_log =
      dynamic_cast<modules::Log*>(s.session().broker(0).find_module("log"));
  const std::size_t before = root_log->session_log().size();
  // ...surfaces at the root after a fault event.
  h->publish("log.fault");
  s.ex().run();
  EXPECT_GT(root_log->session_log().size(), before);
  bool found = false;
  for (const auto& rec : root_log->session_log())
    if (rec.text == "pre-fault context") found = true;
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// mon
// ---------------------------------------------------------------------------

TEST(Mon, KvsActivatedSamplingReducesToKvs) {
  SessionConfig cfg = fast_hb_config(8);
  cfg.module_config["mon"] = Json::object({{"interval_epochs", 2}});
  SimSession s(cfg);
  auto h = s.attach(0);
  // Activate the "load" sampler through the KVS (the paper's mechanism).
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json samplers = Json::array({"load"});
    co_await kvs.put("mon.samplers", std::move(samplers));
    co_await kvs.commit();
  }(h.get()));
  s.settle(std::chrono::milliseconds(3));
  // An aggregate for some epoch must exist, covering all 8 ranks.
  auto names = s.run([](Handle* hd) -> Task<std::vector<std::string>> {
    KvsClient kvs(*hd);
    co_return co_await kvs.list_dir("mon.data.load");
  }(h.get()));
  ASSERT_FALSE(names.empty());
  Json agg = s.run([&](Handle* hd) -> Task<Json> {
    KvsClient kvs(*hd);
    co_return co_await kvs.get("mon.data.load." + names.back());
  }(h.get()));
  EXPECT_EQ(agg.get_int("count"), 8);
  EXPECT_GE(agg.get_double("max"), agg.get_double("min"));
  EXPECT_GT(agg.get_double("avg"), 0.0);
}

TEST(Mon, NoSamplingWithoutKvsActivation) {
  SessionConfig cfg = fast_hb_config(4);
  SimSession s(cfg);
  s.settle(std::chrono::milliseconds(2));
  auto h = s.attach(0);
  try {
    s.run([](Handle* hd) -> Task<void> {
      KvsClient kvs(*hd);
      (void)co_await kvs.list_dir("mon.data");
    }(h.get()));
    FAIL() << "expected ENOENT (no samples stored)";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::noent);
  }
}

// ---------------------------------------------------------------------------
// group
// ---------------------------------------------------------------------------

TEST(Group, JoinLeaveInfo) {
  SimSession s(SimSession::default_config(8));
  auto a = s.attach(3);
  auto b = s.attach(6);
  s.run([](Handle* h1, Handle* h2) -> Task<void> {
    Json j1 = Json::object({{"name", "tools"}});
    co_await h1->request("group.join").payload(std::move(j1)).call();
    Json j2 = Json::object({{"name", "tools"}});
    co_await h2->request("group.join").payload(std::move(j2)).call();
    Json q = Json::object({{"name", "tools"}});
    Message info = co_await h1->request("group.info").payload(std::move(q)).call();
    if (info.payload().get_int("size") != 2)
      throw FluxException(Error(errc::proto, "expected 2 members"));
    Json l = Json::object({{"name", "tools"}});
    co_await h2->request("group.leave").payload(std::move(l)).call();
    Json q2 = Json::object({{"name", "tools"}});
    Message info2 = co_await h1->request("group.info").payload(std::move(q2)).call();
    if (info2.payload().get_int("size") != 1)
      throw FluxException(Error(errc::proto, "expected 1 member"));
  }(a.get(), b.get()));
}

TEST(Group, ChangeEventsPublished) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  int changes = 0;
  Subscription sub =
      h->subscribe("group.change", [&](const Message&) { ++changes; });
  s.run([](Handle* hd) -> Task<void> {
    Json j = Json::object({{"name", "g"}});
    co_await hd->request("group.join").payload(std::move(j)).call();
  }(h.get()));
  s.ex().run();
  EXPECT_EQ(changes, 1);
}

TEST(Group, ListGroups) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  s.run([](Handle* hd) -> Task<void> {
    Json j1 = Json::object({{"name", "alpha"}});
    co_await hd->request("group.join").payload(std::move(j1)).call();
    Json j2 = Json::object({{"name", "beta"}});
    co_await hd->request("group.join").payload(std::move(j2)).call();
    Message resp = co_await hd->request("group.list").call();
    if (resp.payload().at("groups").size() != 2)
      throw FluxException(Error(errc::proto, "expected 2 groups"));
  }(h.get()));
}

}  // namespace
}  // namespace flux
