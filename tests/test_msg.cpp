// Message model and wire codec.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "msg/codec.hpp"
#include "msg/message.hpp"

namespace flux {
namespace {

TEST(Message, ServiceAndMethod) {
  Message m = Message::request("kvs.put");
  EXPECT_EQ(m.service(), "kvs");
  EXPECT_EQ(m.method(), "put");

  Message bare = Message::request("hb");
  EXPECT_EQ(bare.service(), "hb");
  EXPECT_EQ(bare.method(), "");

  Message deep = Message::request("a.b.c");
  EXPECT_EQ(deep.service(), "a");
  EXPECT_EQ(deep.method(), "b.c");
}

TEST(Message, TopicMatching) {
  EXPECT_TRUE(Message::topic_matches("hb", "hb"));
  EXPECT_TRUE(Message::topic_matches("hb", "hb.pulse"));
  EXPECT_FALSE(Message::topic_matches("hb", "hbx"));
  EXPECT_FALSE(Message::topic_matches("hb.pulse", "hb"));
  EXPECT_TRUE(Message::topic_matches("", "anything"));
  EXPECT_TRUE(Message::topic_matches("kvs.setroot", "kvs.setroot"));
}

TEST(Message, RespondCopiesRoutingState) {
  Message req = Message::request("kvs.get", Json::object({{"key", "a"}}));
  req.matchtag = 77;
  req.route.push_back(RouteHop{RouteHop::Kind::Client, 3, 12});
  req.route.push_back(RouteHop{RouteHop::Kind::Broker, 1, 0});

  Message ok = req.respond(Json::object({{"x", 1}}));
  EXPECT_TRUE(ok.is_response());
  EXPECT_EQ(ok.matchtag, 77u);
  EXPECT_EQ(ok.errnum, 0);
  EXPECT_EQ(ok.route, req.route);
  EXPECT_EQ(ok.topic, "kvs.get");

  Message err = req.respond_error(errc::noent, "no such key");
  EXPECT_EQ(err.errnum, static_cast<int>(errc::noent));
  EXPECT_EQ(err.payload.get_string("errmsg"), "no such key");
}

TEST(Codec, RoundTripAllFields) {
  Message m = Message::request("kvs.fence",
                               Json::object({{"name", "f"}, {"nprocs", 12}}));
  m.matchtag = 0xdeadbeef;
  m.nodeid = 42;
  m.seq = 0x1122334455667788ULL;
  m.errnum = 2;
  m.route = {RouteHop{RouteHop::Kind::Client, 9, 101},
             RouteHop{RouteHop::Kind::Broker, 4, 0},
             RouteHop{RouteHop::Kind::Module, 2, 7}};
  m.data = std::make_shared<const std::string>("bulk\0bytes\xff ok", 14);

  auto wire = encode(m);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_EQ(decoded->type, m.type);
  EXPECT_EQ(decoded->topic, m.topic);
  EXPECT_EQ(decoded->matchtag, m.matchtag);
  EXPECT_EQ(decoded->nodeid, m.nodeid);
  EXPECT_EQ(decoded->seq, m.seq);
  EXPECT_EQ(decoded->errnum, m.errnum);
  EXPECT_EQ(decoded->route, m.route);
  EXPECT_EQ(decoded->payload, m.payload);
  ASSERT_TRUE(decoded->data);
  EXPECT_EQ(*decoded->data, *m.data);
}

TEST(Codec, WireSizeMatchesEncodedSize) {
  Message m = Message::event("kvs.setroot",
                             Json::object({{"version", 3},
                                           {"rootref", std::string(40, 'a')}}));
  m.seq = 17;
  m.route.push_back(RouteHop{RouteHop::Kind::Broker, 1, 0});
  m.data = std::make_shared<const std::string>(std::string(100, 'z'));
  EXPECT_EQ(m.wire_size(), encode(m).size());
}

TEST(Codec, RejectsCorruptInput) {
  Message m = Message::request("x.y");
  auto wire = encode(m);

  // Truncations at every length are rejected (never crash).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto r = decode(std::span(wire.data(), len));
    EXPECT_FALSE(r.has_value()) << "truncated to " << len;
  }
  // Bad magic.
  auto bad = wire;
  bad[0] ^= 0xff;
  EXPECT_FALSE(decode(bad).has_value());
  // Bad type.
  bad = wire;
  bad[4] = 99;
  EXPECT_FALSE(decode(bad).has_value());
  // Trailing garbage.
  bad = wire;
  bad.push_back(0);
  EXPECT_FALSE(decode(bad).has_value());
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(junk);  // must not crash; result may rarely succeed
  }
}

TEST(Codec, EmptyEverything) {
  Message m;
  m.type = MsgType::Keepalive;
  auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::Keepalive);
  EXPECT_TRUE(decoded->topic.empty());
  EXPECT_TRUE(decoded->route.empty());
  EXPECT_FALSE(decoded->data);
  EXPECT_FALSE(decoded->attachment);
}

}  // namespace
}  // namespace flux
