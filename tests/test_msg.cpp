// Message model and wire codec.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "kvs/object_bundle.hpp"
#include "msg/codec.hpp"
#include "msg/message.hpp"

namespace flux {
namespace {

TEST(Message, ServiceAndMethod) {
  Message m = Message::request("kvs.put");
  EXPECT_EQ(m.service(), "kvs");
  EXPECT_EQ(m.method(), "put");

  Message bare = Message::request("hb");
  EXPECT_EQ(bare.service(), "hb");
  EXPECT_EQ(bare.method(), "");

  Message deep = Message::request("a.b.c");
  EXPECT_EQ(deep.service(), "a");
  EXPECT_EQ(deep.method(), "b.c");
}

TEST(Message, TopicMatching) {
  EXPECT_TRUE(Message::topic_matches("hb", "hb"));
  EXPECT_TRUE(Message::topic_matches("hb", "hb.pulse"));
  EXPECT_FALSE(Message::topic_matches("hb", "hbx"));
  EXPECT_FALSE(Message::topic_matches("hb.pulse", "hb"));
  EXPECT_TRUE(Message::topic_matches("", "anything"));
  EXPECT_TRUE(Message::topic_matches("kvs.setroot", "kvs.setroot"));
}

TEST(Message, RespondCopiesRoutingState) {
  Message req = Message::request("kvs.get", Json::object({{"key", "a"}}));
  req.matchtag = 77;
  req.route.push_back(RouteHop{RouteHop::Kind::Client, 3, 12});
  req.route.push_back(RouteHop{RouteHop::Kind::Broker, 1, 0});

  Message ok = req.respond(Json::object({{"x", 1}}));
  EXPECT_TRUE(ok.is_response());
  EXPECT_EQ(ok.matchtag, 77u);
  EXPECT_EQ(ok.errnum, 0);
  EXPECT_EQ(ok.route, req.route);
  EXPECT_EQ(ok.topic, "kvs.get");

  Message err = req.respond_error(errc::noent, "no such key");
  EXPECT_EQ(err.errnum, static_cast<int>(errc::noent));
  EXPECT_EQ(err.payload().get_string("errmsg"), "no such key");
}

TEST(Codec, RoundTripAllFields) {
  Message m = Message::request("kvs.fence",
                               Json::object({{"name", "f"}, {"nprocs", 12}}));
  m.matchtag = 0xdeadbeef;
  m.nodeid = 42;
  m.seq = 0x1122334455667788ULL;
  m.errnum = 2;
  m.route = {RouteHop{RouteHop::Kind::Client, 9, 101},
             RouteHop{RouteHop::Kind::Broker, 4, 0},
             RouteHop{RouteHop::Kind::Module, 2, 7}};
  m.set_data(std::make_shared<const std::string>("bulk\0bytes\xff ok", 14));

  auto wire = encode(m);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_EQ(decoded->type, m.type);
  EXPECT_EQ(decoded->topic, m.topic);
  EXPECT_EQ(decoded->matchtag, m.matchtag);
  EXPECT_EQ(decoded->nodeid, m.nodeid);
  EXPECT_EQ(decoded->seq, m.seq);
  EXPECT_EQ(decoded->errnum, m.errnum);
  EXPECT_EQ(decoded->route, m.route);
  EXPECT_EQ(decoded->payload(), m.payload());
  ASSERT_TRUE(decoded->data());
  EXPECT_EQ(*decoded->data(), *m.data());
}

TEST(Codec, WireSizeMatchesEncodedSize) {
  Message m = Message::event("kvs.setroot",
                             Json::object({{"version", 3},
                                           {"rootref", std::string(40, 'a')}}));
  m.seq = 17;
  m.route.push_back(RouteHop{RouteHop::Kind::Broker, 1, 0});
  m.set_data(std::make_shared<const std::string>(std::string(100, 'z')));
  EXPECT_EQ(m.wire_size(), encode(m).size());
}

TEST(Codec, RejectsCorruptInput) {
  Message m = Message::request("x.y");
  auto wire = encode(m);

  // Truncations at every length are rejected (never crash).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto r = decode(std::span(wire.data(), len));
    EXPECT_FALSE(r.has_value()) << "truncated to " << len;
  }
  // Bad magic.
  auto bad = wire;
  bad[0] ^= 0xff;
  EXPECT_FALSE(decode(bad).has_value());
  // Bad type.
  bad = wire;
  bad[4] = 99;
  EXPECT_FALSE(decode(bad).has_value());
  // Trailing garbage.
  bad = wire;
  bad.push_back(0);
  EXPECT_FALSE(decode(bad).has_value());
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(junk);  // must not crash; result may rarely succeed
  }
}

// -- cached body encoding ----------------------------------------------------

namespace {

std::string random_string(Rng& rng, std::size_t max_len) {
  std::string s(rng.below(max_len + 1), '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.below(26));
  return s;
}

Message random_message(Rng& rng) {
  Message m = Message::request(
      "svc." + random_string(rng, 12),
      Json::object({{"k", random_string(rng, 32)},
                    {"n", static_cast<std::int64_t>(rng.below(1 << 20))},
                    {"flag", rng.below(2) == 0}}));
  m.type = static_cast<MsgType>(1 + rng.below(3));  // request/response/event
  m.matchtag = static_cast<std::uint32_t>(rng.below(1u << 31));
  m.nodeid = static_cast<NodeId>(rng.below(4096));
  m.seq = rng.below(1u << 30);
  m.errnum = static_cast<int>(rng.below(3));
  const std::size_t nroute = rng.below(5);
  for (std::size_t i = 0; i < nroute; ++i)
    m.route.push_back(RouteHop{static_cast<RouteHop::Kind>(rng.below(4)),
                               static_cast<NodeId>(rng.below(64)),
                               rng.below(1000)});
  const std::size_t ntrace = rng.below(4);
  for (std::size_t i = 0; i < ntrace; ++i)
    m.trace.push_back(TraceHop{static_cast<NodeId>(rng.below(64)),
                               static_cast<TraceHop::Plane>(rng.below(4)),
                               static_cast<std::int64_t>(rng.below(1u << 30))});
  if (rng.below(2) == 0)
    // Never empty: a zero-length data frame decodes as "no data".
    m.set_data(std::make_shared<const std::string>(
        "d" + random_string(rng, 200)));
  if (rng.below(3) == 0) {
    std::vector<ObjPtr> objs;
    const std::size_t nobj = 1 + rng.below(3);
    for (std::size_t i = 0; i < nobj; ++i)
      objs.push_back(make_val_object(Json(random_string(rng, 24))));
    m.set_attachment(std::make_shared<ObjectBundle>(std::move(objs)));
  }
  return m;
}

void expect_same_message(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.topic, b.topic);
  EXPECT_EQ(a.matchtag, b.matchtag);
  EXPECT_EQ(a.nodeid, b.nodeid);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.errnum, b.errnum);
  EXPECT_EQ(a.route, b.route);
  EXPECT_EQ(a.payload().dump(), b.payload().dump());
  ASSERT_EQ(!!a.data(), !!b.data());
  if (a.data()) EXPECT_EQ(*a.data(), *b.data());
  ASSERT_EQ(!!a.attachment(), !!b.attachment());
  if (a.attachment())
    EXPECT_EQ(a.attachment()->serialize(), b.attachment()->serialize());
}

}  // namespace

// Property: any message survives encode->decode in every cached-encoding
// state (fresh, already-encoded, decoded-and-reencoded), and the cached body
// never changes the bytes the codec produces.
TEST(Codec, PropertyRoundTripCachedStates) {
  ObjectBundle::register_codec();
  Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    Message m = random_message(rng);

    // State 1: fresh message, no cached body.
    EXPECT_FALSE(m.has_encoded_body());
    const auto wire = encode(m);
    EXPECT_EQ(m.wire_size(), wire.size());

    // State 2: cached body present; bytes must be identical.
    EXPECT_TRUE(m.has_encoded_body());
    EXPECT_EQ(encode(m), wire);

    auto decoded = decode(wire);
    ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
    expect_same_message(*decoded, m);

    // State 3: a decoded message re-encodes (next forwarding hop) to the
    // same bytes, via its seeded body cache.
    EXPECT_TRUE(decoded->has_encoded_body());
    EXPECT_EQ(encode(*decoded), wire);
    EXPECT_EQ(decoded->wire_size(), wire.size());

    // Shared-frame path agrees with the span path.
    const WireFrame frame = encode_shared(m);
    EXPECT_EQ(*frame, wire);
    auto decoded2 = decode_shared(frame);
    ASSERT_TRUE(decoded2.has_value());
    expect_same_message(*decoded2, m);
  }
}

// Property: every body mutation after an encode invalidates the cached
// encoding, and the re-encode reflects the mutation.
TEST(Codec, MutationAfterEncodeInvalidates) {
  ObjectBundle::register_codec();
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    Message m = random_message(rng);
    (void)encode(m);
    ASSERT_TRUE(m.has_encoded_body());

    switch (rng.below(4)) {
      case 0:
        m.mutable_payload()["mut"] = static_cast<std::int64_t>(iter);
        break;
      case 1:
        m.set_payload(Json::object({{"replaced", true}}));
        break;
      case 2:
        m.set_data(std::make_shared<const std::string>("mutated data"));
        break;
      default:
        m.set_attachment(std::make_shared<ObjectBundle>(
            std::vector<ObjPtr>{make_val_object(Json("mutated"))}));
        break;
    }
    EXPECT_FALSE(m.has_encoded_body());

    auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value());
    expect_same_message(*decoded, m);
    EXPECT_EQ(m.wire_size(), encode(m).size());
  }
}

// Header mutation (route/trace push per hop) must NOT invalidate the body
// cache: a forwarded message is header-rewritten but body-reused.
TEST(Codec, RouteMutationKeepsBodyCache) {
  Message m = Message::request("kvs.load", Json::object({{"x", 1}}));
  (void)encode(m);
  ASSERT_TRUE(m.has_encoded_body());
  m.route.push_back(RouteHop{RouteHop::Kind::Broker, 5, 0});
  m.trace.push_back(TraceHop{5, TraceHop::Plane::Tree, 123});
  EXPECT_TRUE(m.has_encoded_body());
  auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->route.size(), 1u);
  EXPECT_EQ(decoded->payload().get_int("x", 0), 1);
}

// A message forwarded across N hops serializes its body exactly once: every
// hop's encode() reuses the cache seeded by decode() at the previous hop.
TEST(Codec, ForwardingChainBuildsBodyOnce) {
  codec_stats().reset();
  Message m = Message::request(
      "kvs.load", Json::object({{"refs", Json::array()}}));
  m.set_data(std::make_shared<const std::string>(std::string(512, 'b')));

  constexpr int kHops = 6;
  WireFrame frame = encode_shared(m);  // hop 0: the one true body build
  for (int hop = 1; hop < kHops; ++hop) {
    auto decoded = decode_shared(frame);
    ASSERT_TRUE(decoded.has_value());
    decoded->route.push_back(
        RouteHop{RouteHop::Kind::Broker, static_cast<NodeId>(hop), 0});
    frame = encode_shared(*decoded);
  }

  const CodecStats& st = codec_stats();
  EXPECT_EQ(st.encodes.load(), static_cast<std::uint64_t>(kHops));
  EXPECT_EQ(st.body_builds.load(), 1u);
  EXPECT_EQ(st.body_reuses.load(), static_cast<std::uint64_t>(kHops - 1));
}

TEST(Codec, EmptyEverything) {
  Message m;
  m.type = MsgType::Keepalive;
  auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::Keepalive);
  EXPECT_TRUE(decoded->topic.empty());
  EXPECT_TRUE(decoded->route.empty());
  EXPECT_FALSE(decoded->data());
  EXPECT_FALSE(decoded->attachment());
}

}  // namespace
}  // namespace flux
