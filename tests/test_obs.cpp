// Observability subsystem: StatsRegistry instruments, broker/module stats
// RPCs, per-message route tracing, and the KvsTxn client transaction API.
#include <gtest/gtest.h>

#include "obs/stats.hpp"
#include "obs/stats_client.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

// ---------------------------------------------------------------------------
// Instruments (no session required)
// ---------------------------------------------------------------------------

TEST(ObsCounter, IncrementsByArbitraryAmounts) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsHistogram, BasicStatistics) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  for (std::uint64_t v : {100u, 200u, 400u, 800u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 800u);
  EXPECT_EQ(h.sum(), 1500u);
  EXPECT_DOUBLE_EQ(h.mean(), 375.0);
  // Percentiles are bucket-resolution but must be ordered and clamped.
  EXPECT_LE(h.percentile(0.0), h.percentile(0.5));
  EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
  EXPECT_GE(h.percentile(0.01), h.min());
  EXPECT_LE(h.percentile(0.99), h.max());
}

TEST(ObsHistogram, JsonRoundTripAndMerge) {
  obs::Histogram a;
  for (std::uint64_t v : {10u, 1000u, 100000u}) a.record(v);
  const Json j = a.to_json();
  EXPECT_EQ(j.get_int("count"), 3);
  EXPECT_EQ(j.get_int("min"), 10);
  EXPECT_EQ(j.get_int("max"), 100000);
  ASSERT_TRUE(j.contains("buckets"));

  // Merging a histogram's own JSON doubles every statistic.
  obs::Histogram b;
  b.merge_json(j);
  b.merge_json(j);
  EXPECT_EQ(b.count(), 6u);
  EXPECT_EQ(b.min(), 10u);
  EXPECT_EQ(b.max(), 100000u);
  EXPECT_EQ(b.sum(), 2u * a.sum());
}

TEST(ObsRegistry, SnapshotFiltersByServicePrefix) {
  obs::StatsRegistry reg;
  reg.counter("kvs.puts").inc(3);
  reg.counter("kvsx.other").inc(7);
  reg.histogram("kvs.commit_ns").record(500u);

  const Json all = reg.snapshot();
  EXPECT_EQ(all.at("counters").size(), 2u);

  // "kvs" must match "kvs.puts" but not "kvsx.other".
  const Json kvs = reg.snapshot("kvs");
  EXPECT_EQ(kvs.at("counters").size(), 1u);
  EXPECT_EQ(kvs.at("counters").get_int("kvs.puts"), 3);
  EXPECT_EQ(kvs.at("histograms").size(), 1u);
}

TEST(ObsRegistry, MergeSnapshotSumsAndMerges) {
  obs::StatsRegistry reg;
  reg.counter("svc.ops").inc(5);
  reg.histogram("svc.lat").record(100u);
  const Json snap = reg.snapshot();

  Json agg;
  obs::StatsRegistry::merge_snapshot(agg, snap);
  obs::StatsRegistry::merge_snapshot(agg, snap);
  EXPECT_EQ(agg.at("counters").get_int("svc.ops"), 10);
  EXPECT_EQ(agg.at("histograms").at("svc.lat").get_int("count"), 2);
}

// ---------------------------------------------------------------------------
// Route tracing
// ---------------------------------------------------------------------------

TEST(ObsTrace, TracedKvsGetHopCountMatchesTopologyDepth) {
  // kvs pinned to the root: a traced get from the deepest leaf must cross
  // every broker on the path up (d tree hops + the local client hop) and
  // every broker on the way back down (d hops): 2*depth + 1 stamps.
  SessionConfig cfg = SimSession::default_config(16);
  cfg.module_max_depth["kvs"] = 0;
  SimSession s(cfg);
  const NodeId leaf = 15;
  const unsigned depth = s.session().broker(leaf).depth();
  ASSERT_GT(depth, 0u);

  auto h = s.attach(leaf);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("trace.k", 7);
    co_await kvs.commit();
  }(h.get()));

  Message resp = s.run([](Handle* hd) -> Task<Message> {
    Json payload = Json::object({{"key", "trace.k"}});
    Message r = co_await hd->request("kvs.get")
                    .payload(std::move(payload))
                    .trace()
                    .send();
    co_return r;
  }(h.get()));

  EXPECT_EQ(resp.errnum, 0);
  ASSERT_EQ(resp.trace.size(), 2 * depth + 1);
  // First stamp: this broker receiving its own client's request.
  EXPECT_EQ(resp.trace.front().rank, leaf);
  EXPECT_EQ(resp.trace.front().plane, TraceHop::Plane::Local);
  // The turnaround is the root; the last stamp is back at the leaf.
  EXPECT_EQ(resp.trace[depth].rank, 0u);
  EXPECT_EQ(resp.trace.back().rank, leaf);
  // Timestamps are monotone along the path.
  for (std::size_t i = 1; i < resp.trace.size(); ++i)
    EXPECT_GE(resp.trace[i].t_ns, resp.trace[i - 1].t_ns) << "hop " << i;
}

TEST(ObsTrace, UntracedRequestsCarryNoHops) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  Message resp = s.run([](Handle* hd) -> Task<Message> {
    Message r = co_await hd->request("cmb.info").send();
    co_return r;
  }(h.get()));
  EXPECT_EQ(resp.errnum, 0);
  EXPECT_TRUE(resp.trace.empty());
}

// ---------------------------------------------------------------------------
// Stats RPCs
// ---------------------------------------------------------------------------

TEST(ObsStats, CmbStatsGetReflectsBrokerActivity) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(2);
  (void)s.run(h->ping(5));  // generate ring traffic + one matched rpc

  Message resp = s.run(h->request("cmb.stats.get").to(2).call());
  EXPECT_EQ(resp.payload().get_int("rank"), 2);
  const Json& counters = resp.payload().at("counters");
  EXPECT_GT(counters.get_int("cmb.net.rx_msgs"), 0);
  EXPECT_GT(counters.get_int("cmb.net.tx_bytes"), 0);
  // The ping's response was matched on this broker -> a latency sample.
  EXPECT_GE(resp.payload().at("histograms").at("cmb.rpc_ns").get_int("count"), 1);
  // Registry counters agree with the legacy Stats struct.
  EXPECT_EQ(counters.get_int("cmb.rpc_timeouts"),
            static_cast<std::int64_t>(s.session().broker(2).stats().rpc_timeouts));
}

TEST(ObsStats, ModuleStatsGetCountsRequests) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("m.k", 1);
    co_await kvs.commit();
    (void)co_await kvs.get("m.k");
  }(h.get()));

  Message resp = s.run(h->request("kvs.stats.get").call());
  const Json& counters = resp.payload().at("counters");
  EXPECT_GE(counters.get_int("kvs.requests"), 2);
}

TEST(ObsStats, KvsCacheCountersTrackHitsAndMisses) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);  // leaf: gets fault through the cache, not the store
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("cache.k", 11);
    co_await kvs.commit();
    (void)co_await kvs.get("cache.k");  // faults objects in (misses)
    (void)co_await kvs.get("cache.k");  // served locally (hits)
  }(h.get()));

  Message resp = s.run(h->request("cmb.stats.get")
                           .payload(Json::object({{"all", true}}))
                           .to(3)
                           .call());
  const Json& counters = resp.payload().at("counters");
  EXPECT_GT(counters.get_int("kvs.cache.misses"), 0);
  EXPECT_GT(counters.get_int("kvs.cache.hits"), 0);
}

TEST(ObsStats, AggregateSweepsEveryRank) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(3);
  (void)s.run(h->ping(6));

  Json agg = s.run([](Handle* hd) -> Task<Json> {
    obs::FluxStats stats(*hd);
    Json merged = co_await stats.aggregate("cmb");
    co_return merged;
  }(h.get()));
  EXPECT_EQ(agg.get_int("ranks"), 8);
  // Session-wide rx must cover at least the wire-up hellos of every broker.
  EXPECT_GE(agg.at("counters").get_int("cmb.net.rx_msgs"), 8);
}

TEST(ObsStats, RpcTimeoutCountsAndLateResponseIsDropped) {
  SimSession s(SimSession::default_config(4));
  auto h1 = s.attach(1);
  auto h2 = s.attach(2);

  // h1 enters a 2-party barrier alone with a short timeout.
  bool timed_out = false;
  s.run([](Handle* hd, bool* out) -> Task<void> {
    Json payload = Json::object({{"name", "late"}, {"nprocs", 2}});
    try {
      (void)co_await hd->request("barrier.enter")
          .payload(std::move(payload))
          .timeout(std::chrono::milliseconds(5));
    } catch (const FluxException& e) {
      *out = (e.error().code == errc::timeout);
    }
  }(h1.get(), &timed_out));
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(s.session().broker(1).stats().rpc_timeouts, 1u);

  // h2 completes the barrier; the release response for h1's long-gone entry
  // arrives at broker 1 with no pending match and must be counted, not leak.
  s.run([](Handle* hd) -> Task<void> {
    co_await hd->barrier("late", 2);
  }(h2.get()));
  s.ex().run();
  EXPECT_GE(s.session().broker(1).stats().responses_dropped, 1u);
}

// ---------------------------------------------------------------------------
// KvsTxn
// ---------------------------------------------------------------------------

TEST(KvsTxn, ExplicitTransactionCommitsAtomically) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    KvsTxn txn;
    txn.put("txn.a", 1).put("txn.b", 2).mkdir("txn.dir");
    if (txn.size() != 3)
      throw FluxException(Error(errc::proto, "expected 3 staged ops"));
    CommitResult r = co_await kvs.commit(std::move(txn));
    if (r.version == 0)
      throw FluxException(Error(errc::proto, "commit did not advance root"));
    Json a = co_await kvs.get("txn.a");
    Json b = co_await kvs.get("txn.b");
    if (a != Json(1) || b != Json(2))
      throw FluxException(Error(errc::proto, "txn values lost"));
    (void)co_await kvs.list_dir("txn.dir");
  }(h.get()));
}

TEST(KvsTxn, StagedWritesInvisibleUntilCommit) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("inv.k", 9);  // staged in the default txn only
    if (kvs.txn().size() != 1)
      throw FluxException(Error(errc::proto, "put did not stage"));
    try {
      (void)co_await kvs.get("inv.k");
      throw FluxException(Error(errc::proto, "uncommitted put visible"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::noent) throw;
    }
    co_await kvs.commit();
    if (!kvs.txn().empty())
      throw FluxException(Error(errc::proto, "commit left txn non-empty"));
    Json v = co_await kvs.get("inv.k");
    if (v != Json(9)) throw FluxException(Error(errc::proto, "lost put"));
  }(h.get()));
}

TEST(KvsTxn, UnlinkStagesTombstone) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("del.k", "x");
    co_await kvs.commit();
    KvsTxn txn;
    txn.unlink("del.k");
    co_await kvs.commit(std::move(txn));
    try {
      (void)co_await kvs.get("del.k");
      throw FluxException(Error(errc::proto, "unlinked key still readable"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::noent) throw;
    }
  }(h.get()));
}

TEST(KvsTxn, EmptyKeyRejectedAtStagingTime) {
  KvsTxn txn;
  try {
    txn.put("", 1);
    FAIL() << "expected EINVAL";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::inval);
  }
  EXPECT_TRUE(txn.empty());
}

TEST(KvsTxn, ClearDiscardsStagedOps) {
  KvsTxn txn;
  txn.put("a", 1).unlink("b");
  EXPECT_EQ(txn.size(), 2u);
  txn.clear();
  EXPECT_TRUE(txn.empty());
}

}  // namespace
}  // namespace flux
