// Persistence suite (ctest -L persist): durability under crashes, proven at
// two levels.
//
//   1. Backend level — a seeded torn-crash suite: random append/sync/crash
//      schedules against FileLogBackend, where a crash keeps a random torn
//      prefix of the unsynced tail. Recovery must always come back at or
//      past the last synced root with every synced object intact, across
//      several crash generations of the same file.
//   2. Session level — the DST persistence matrix: the standard workload and
//      consistency oracle with persistence on, across clean, sharded,
//      faulted, and crash schedules — including the kill-and-restart
//      scenario (opt.master_crash): the root broker, which is the persisting
//      KVS master, crashes mid-run with a torn tail and restarts; the
//      offline durability audit in run_schedule then proves every acked
//      commit is recoverable from the on-disk log.
//
// FLUX_PERSIST_SEEDS scales the sweep widths; FLUX_TEST_SEED shifts every
// base seed. Failing seeds are printed for replay (the chaos-suite idiom).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "check/explorer.hpp"
#include "check/mutation.hpp"
#include "kvs/content_backend.hpp"
#include "kvs/content_store.hpp"
#include "kvs/treeobj.hpp"
#include "test_seed.hpp"

namespace flux::check {
namespace {

using flux::testing::test_seed;

/// Sweep width; FLUX_PERSIST_SEEDS overrides (e.g. 500 for a soak).
int sweep(int dflt) {
  if (const char* env = std::getenv("FLUX_PERSIST_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

std::string describe(const DstResult& r) {
  std::string out = "seed " + std::to_string(r.seed) + ": ";
  if (r.workload_error) out += "workload error: " + r.error + "; ";
  if (r.stalled_clients > 0)
    out += std::to_string(r.stalled_clients) + " stalled; ";
  out += r.report.to_string();
  for (const std::string& v : r.job_violations) out += "\n  job oracle: " + v;
  for (const std::string& v : r.durability_violations)
    out += "\n  durability: " + v;
  if (!r.fault_plan.is_null()) out += "\nfault plan: " + r.fault_plan.dump();
  return out;
}

void expect_all_pass(std::uint64_t base, int n, const DstOptions& opt) {
  const std::vector<DstResult> failures = explore(base, n, opt);
  for (const DstResult& f : failures) ADD_FAILURE() << describe(f);
  EXPECT_TRUE(failures.empty())
      << failures.size() << "/" << n << " schedules failed (replay with "
      << "FLUX_TEST_SEED; first failing seed printed above)";
}

// -- 1. backend-level torn-crash suite ---------------------------------------

TEST(PersistTornCrash, RecoveryNeverLosesASyncedRoot) {
  // 50 seeds by default (FLUX_PERSIST_SEEDS scales). Each seed drives three
  // crash generations of one log file: random appends and syncs, then a
  // crash keeping a random torn prefix of the unsynced tail. The invariant
  // is exactly the ack contract: recovery comes back at a version >= the
  // last synced ("acked") root, with that version's exact root ref and every
  // object synced before the crash intact.
  const std::uint64_t base = test_seed() + 0x9e0000;
  const int seeds = sweep(50);
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    SCOPED_TRACE(::testing::Message() << "torn-crash seed " << seed);
    Rng rng(seed);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("flux-torn-" + std::to_string(::getpid()) + "-" +
          std::to_string(seed) + ".log"))
            .string();

    std::map<std::uint64_t, Sha1> root_of_version;
    std::set<Sha1> synced_objects;  // durable before the last crash
    std::uint64_t synced_version = 0;
    std::uint64_t version = 0;

    for (int generation = 0; generation < 3; ++generation) {
      ContentStore store;
      FileLogBackend backend(path);
      const ContentBackend::Recovered rec = backend.recover(store);

      // The recovered state honors every past ack.
      const std::uint64_t recovered = rec.has_root(0) ? rec.versions[0] : 0;
      ASSERT_GE(recovered, synced_version)
          << "recovery lost acked version " << synced_version;
      if (recovered != 0) {
        ASSERT_TRUE(root_of_version.count(recovered))
            << "recovered unknown version " << recovered;
        EXPECT_EQ(rec.roots[0], root_of_version[recovered]);
      }
      for (const Sha1& id : synced_objects)
        EXPECT_TRUE(store.contains(id))
            << "synced object " << id.hex() << " lost";

      // Resume appending past the recovered state (the recovery epoch).
      version = recovered;
      std::vector<Sha1> appended_unsynced;
      std::uint64_t appended_version = version;
      const auto nops = 4 + rng.below(12);
      for (std::uint64_t op = 0; op < nops; ++op) {
        switch (rng.below(3)) {
          case 0:
          case 1: {
            ObjPtr obj = make_val_object(Json::object(
                {{"seed", static_cast<std::int64_t>(seed)},
                 {"n", static_cast<std::int64_t>(rng())}}));
            appended_unsynced.push_back(obj->id);
            backend.append_object(*obj);
            backend.append_root(0, ++appended_version, obj->id);
            root_of_version[appended_version] = obj->id;
            break;
          }
          default:
            backend.sync();
            // Everything appended so far is now acked.
            for (const Sha1& id : appended_unsynced)
              synced_objects.insert(id);
            appended_unsynced.clear();
            synced_version = appended_version;
            break;
        }
      }
      // Crash with a random torn prefix of whatever is still unsynced.
      const std::uint64_t unsynced = backend.unsynced_bytes();
      backend.crash(unsynced == 0 ? 0 : rng.below(unsynced + 1));
    }
    std::filesystem::remove(path);
  }
}

// -- 2. DST persistence matrix -----------------------------------------------

TEST(PersistDst, CleanSchedulesPass) {
  DstOptions opt;
  opt.persist = true;
  expect_all_pass(test_seed() + 0xa00000, sweep(25), opt);
}

TEST(PersistDst, ShardedSchedulesPass) {
  // Every shard master persists to its own log (path + ".s<k>"); the audit
  // routes each acked key to its shard's recovered root.
  DstOptions opt;
  opt.persist = true;
  opt.size = 5;
  opt.shards = 2;
  expect_all_pass(test_seed() + 0xa10000, sweep(15), opt);
}

TEST(PersistDst, FaultedSchedulesPass) {
  DstOptions opt;
  opt.persist = true;
  opt.faults = true;
  opt.drops = true;
  opt.delays = true;
  expect_all_pass(test_seed() + 0xa20000, sweep(15), opt);
}

TEST(PersistDst, NonRootCrashSchedulesPass) {
  // Crashing slave brokers must never disturb the master's durable state.
  DstOptions opt;
  opt.persist = true;
  opt.faults = true;
  opt.crashes = true;
  opt.restarts = true;
  opt.delays = true;
  expect_all_pass(test_seed() + 0xa30000, sweep(10), opt);
}

TEST(PersistDst, MasterKillAndRestartRecoversEveryAckedCommit) {
  // The headline scenario: the root broker (the persisting master) crashes
  // mid-run — losing a random torn prefix of its unsynced tail — and
  // restarts in place. Clients ride out the outage with typed errors; the
  // restarted master recovers from its log and re-announces one version
  // above the recovered one. The consistency oracle checks the live session;
  // the offline audit then checks the on-disk log serves every acked commit.
  DstOptions opt;
  opt.persist = true;
  opt.master_crash = true;
  opt.rounds = 3;
  expect_all_pass(test_seed() + 0xa40000, sweep(20), opt);
}

TEST(PersistDst, MasterCrashUnderMessageChurnPass) {
  DstOptions opt;
  opt.persist = true;
  opt.master_crash = true;
  opt.faults = true;
  opt.drops = true;
  opt.delays = true;
  expect_all_pass(test_seed() + 0xa50000, sweep(10), opt);
}

TEST(PersistDst, SameSeedIsDeterministicWithPersistence) {
  // The file-system layer lives outside the simulation; it must not leak
  // nondeterminism back in. Same seed, same history, same verdict.
  DstOptions opt;
  opt.persist = true;
  opt.master_crash = true;
  const std::uint64_t seed = test_seed() + 0xa60000;
  const DstResult a = run_schedule(seed, opt);
  const DstResult b = run_schedule(seed, opt);
  EXPECT_EQ(a.history_len, b.history_len);
  EXPECT_EQ(a.failed(), b.failed());
  EXPECT_EQ(a.report.to_string(), b.report.to_string());
  EXPECT_EQ(a.fault_plan.dump(), b.fault_plan.dump());
}

TEST(PersistDst, AuditHasTeeth) {
  // Blind-oracle guard, the test_dst.cpp mutation idiom: kvs.skip_sync makes
  // the master ack commits while the log tail is still buffered — breaking
  // exactly the ack-after-sync invariant the audit checks — so a master
  // crash must surface a durability violation on some nearby seed. An audit
  // that passes every mutated schedule is blind.
  const MutationGuard guard("kvs.skip_sync");
  DstOptions opt;
  opt.persist = true;
  opt.master_crash = true;
  opt.rounds = 3;
  const std::uint64_t base = test_seed() + 0xa70000;
  for (int i = 0; i < 12; ++i) {
    const DstResult r =
        run_schedule(base + static_cast<std::uint64_t>(i), opt);
    if (!r.durability_violations.empty()) return;  // caught — audit has teeth
  }
  ADD_FAILURE() << "durability audit never flagged a lost acked commit "
                   "under the kvs.skip_sync mutation (12 seeds)";
}

}  // namespace
}  // namespace flux::check
