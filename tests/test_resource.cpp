// Generalized resource model and pools (paper §III).
#include <gtest/gtest.h>

#include "resource/pool.hpp"
#include "resource/resource.hpp"

namespace flux {
namespace {

ResourceGraph small_center() {
  // 2 clusters x 2 racks x 4 nodes = 16 nodes, 16 cores each.
  return ResourceGraph::build_center("center", 2, 2, 4, 16, 32, 350, 100);
}

TEST(ResourceGraph, BuildCenterShape) {
  ResourceGraph g = small_center();
  EXPECT_EQ(g.find("cluster").size(), 2u);
  EXPECT_EQ(g.find("rack").size(), 4u);
  EXPECT_EQ(g.find("node").size(), 16u);
  EXPECT_EQ(g.find("core").size(), 16u * 16u);
  EXPECT_DOUBLE_EQ(g.total_capacity("power"), 16 * 350.0);
  EXPECT_DOUBLE_EQ(g.total_capacity("bandwidth"), 200.0);
}

TEST(ResourceGraph, SubtreeScoping) {
  ResourceGraph g = small_center();
  const ResourceId cluster0 = g.find("cluster").front();
  EXPECT_EQ(g.find("node", cluster0).size(), 8u);
  EXPECT_DOUBLE_EQ(g.total_capacity("power", cluster0), 8 * 350.0);
}

TEST(ResourceGraph, PathNames) {
  ResourceGraph g = small_center();
  const ResourceId node = g.find("node").front();
  EXPECT_EQ(g.path(node), "center.cluster0.rack0.node0");
}

TEST(ResourceGraph, JsonRoundTrip) {
  ResourceGraph g = small_center();
  auto back = ResourceGraph::from_json(g.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), g.size());
  EXPECT_EQ(back->find("core").size(), g.find("core").size());
  EXPECT_EQ(back->to_json(), g.to_json());
}

TEST(ResourceGraph, FromJsonRejectsGarbage) {
  EXPECT_FALSE(ResourceGraph::from_json(Json(3)).has_value());
  EXPECT_FALSE(
      ResourceGraph::from_json(Json::object({{"type", "node"}})).has_value());
}

TEST(Pool, AllocateReleaseAccounting) {
  ResourceGraph g = small_center();
  ResourcePool pool(g);
  EXPECT_EQ(pool.total_nodes(), 16u);
  ResourceRequest req;
  req.nnodes = 5;
  req.power_w = 1000;
  auto alloc = pool.allocate(req);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->nodes.size(), 5u);
  EXPECT_EQ(pool.free_nodes(), 11u);
  EXPECT_DOUBLE_EQ(pool.power_in_use(), 1000);
  EXPECT_NEAR(pool.node_utilization(), 5.0 / 16.0, 1e-9);
  ASSERT_TRUE(pool.release(alloc->id).has_value());
  EXPECT_EQ(pool.free_nodes(), 16u);
  EXPECT_DOUBLE_EQ(pool.power_in_use(), 0);
}

TEST(Pool, RejectsInfeasibleAndOversized) {
  ResourceGraph g = small_center();
  ResourcePool pool(g);
  ResourceRequest too_wide;
  too_wide.nnodes = 17;
  EXPECT_FALSE(pool.feasible(too_wide));
  EXPECT_FALSE(pool.allocate(too_wide).has_value());
  ResourceRequest too_hot;
  too_hot.nnodes = 1;
  too_hot.power_w = 1e9;
  EXPECT_FALSE(pool.allocate(too_hot).has_value());
  ResourceRequest too_many_cores;
  too_many_cores.nnodes = 1;
  too_many_cores.cores_per_node = 64;
  EXPECT_FALSE(pool.allocate(too_many_cores).has_value());
}

TEST(Pool, PowerBudgetGatesConcurrency) {
  ResourceGraph g = small_center();
  ResourcePool pool(g);  // budget = 5600 W
  ResourceRequest req;
  req.nnodes = 1;
  req.power_w = 2000;
  ASSERT_TRUE(pool.allocate(req).has_value());
  ASSERT_TRUE(pool.allocate(req).has_value());
  // Third would exceed 5600.
  EXPECT_FALSE(pool.fits_now(req));
  EXPECT_FALSE(pool.allocate(req).has_value());
}

TEST(Pool, GrowAndShrink) {
  ResourceGraph g = small_center();
  ResourcePool pool(g);
  ResourceRequest req;
  req.nnodes = 4;
  auto alloc = pool.allocate(req);
  ASSERT_TRUE(alloc.has_value());
  ResourceRequest delta;
  delta.nnodes = 2;
  auto grown = pool.grow(alloc->id, delta);
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(grown->size(), 2u);
  EXPECT_EQ(pool.lookup(alloc->id)->nodes.size(), 6u);
  auto freed = pool.shrink(alloc->id, delta);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(pool.lookup(alloc->id)->nodes.size(), 4u);
  EXPECT_EQ(pool.free_nodes(), 12u);
}

TEST(Pool, ShrinkMoreThanAllocatedRejected) {
  ResourceGraph g = small_center();
  ResourcePool pool(g);
  ResourceRequest req;
  req.nnodes = 2;
  auto alloc = pool.allocate(req);
  ASSERT_TRUE(alloc.has_value());
  ResourceRequest delta;
  delta.nnodes = 3;
  EXPECT_FALSE(pool.shrink(alloc->id, delta).has_value());
}

TEST(Pool, AdoptAndCedeMoveCapacityBetweenPools) {
  ResourceGraph g = small_center();
  ResourcePool parent(g);
  ResourceRequest carve;
  carve.nnodes = 6;
  carve.power_w = 2100;
  auto alloc = parent.allocate(carve);
  ASSERT_TRUE(alloc.has_value());
  ResourcePool child(g, alloc->nodes, alloc->power_w, 0);
  EXPECT_EQ(child.total_nodes(), 6u);
  EXPECT_DOUBLE_EQ(child.power_budget(), 2100);

  // Child gives two nodes back.
  ResourceRequest back;
  back.nnodes = 2;
  back.power_w = 700;
  auto ceded = child.cede(back);
  ASSERT_TRUE(ceded.has_value());
  EXPECT_EQ(child.total_nodes(), 4u);
  ASSERT_TRUE(parent.shrink_nodes(alloc->id, *ceded, 700, 0).has_value());
  EXPECT_EQ(parent.free_nodes(), 12u);

  // Parent grants one node more.
  ResourceRequest more;
  more.nnodes = 1;
  more.power_w = 350;
  auto granted = parent.grow(alloc->id, more);
  ASSERT_TRUE(granted.has_value());
  child.adopt(*granted, 350, 0);
  EXPECT_EQ(child.total_nodes(), 5u);
  EXPECT_DOUBLE_EQ(child.power_budget(), 1750);
}

TEST(Pool, OverBudgetDetection) {
  ResourceGraph g = small_center();
  ResourcePool pool(g);
  ResourceRequest req;
  req.nnodes = 2;
  req.power_w = 3000;
  ASSERT_TRUE(pool.allocate(req).has_value());
  EXPECT_FALSE(pool.over_power_budget());
  pool.set_power_budget(2000);  // dynamic cap below current use
  EXPECT_TRUE(pool.over_power_budget());
}

TEST(Pool, CoreConstraintSelectsWideNodes) {
  // Heterogeneous graph: 2 fat nodes (32 cores), 2 thin (8 cores).
  ResourceGraph g;
  const ResourceId root = g.add_root("cluster", "mixed");
  for (int i = 0; i < 4; ++i) {
    const ResourceId n = g.add(root, "node", "n" + std::to_string(i));
    const int cores = i < 2 ? 32 : 8;
    for (int c = 0; c < cores; ++c)
      g.add(n, "core", "c" + std::to_string(c));
  }
  ResourcePool pool(g);
  ResourceRequest req;
  req.nnodes = 2;
  req.cores_per_node = 16;
  auto alloc = pool.allocate(req);
  ASSERT_TRUE(alloc.has_value());
  for (ResourceId n : alloc->nodes)
    EXPECT_GE(g.find("core", n).size(), 16u);
  // A third wide node does not exist.
  ResourceRequest one_more = req;
  one_more.nnodes = 1;
  EXPECT_FALSE(pool.allocate(one_more).has_value());
}

}  // namespace
}  // namespace flux
