// resvc (resource enumeration/allocation in the KVS) and the PMI bootstrap
// library (the paper's MPI-runtime integration path).
#include <gtest/gtest.h>

#include "api/pmi.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

// ---------------------------------------------------------------------------
// resvc
// ---------------------------------------------------------------------------

TEST(Resvc, EnumeratesNodesIntoKvs) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    auto nodes = co_await kvs.list_dir("resource.nodes");
    if (nodes.size() != 8)
      throw FluxException(Error(errc::proto, "expected 8 enumerated nodes"));
    Json n0 = co_await kvs.get("resource.nodes.n0");
    if (n0.get_int("cores") != 16 || n0.get_string("state") != "up")
      throw FluxException(Error(errc::proto, "bad node record"));
  }(h.get()));
}

TEST(Resvc, AllocateRecordsAndFrees) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(5);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json req = Json::object({{"jobid", "lwj1"}, {"nnodes", 3}});
    Message resp = co_await hd->request("resvc.alloc").payload(std::move(req)).call();
    if (resp.payload().at("ranks").size() != 3)
      throw FluxException(Error(errc::proto, "expected 3 ranks"));
    // Allocation recorded in the KVS under the job.
    Json rec = co_await kvs.get("lwj.lwj1.resources");
    if (rec.size() != 3)
      throw FluxException(Error(errc::proto, "allocation not recorded"));
    Message st = co_await hd->request("resvc.status").call();
    if (st.payload().get_int("free") != 5)
      throw FluxException(Error(errc::proto, "free count wrong"));
    Json fr = Json::object({{"jobid", "lwj1"}});
    co_await hd->request("resvc.free").payload(std::move(fr)).call();
    Message st2 = co_await hd->request("resvc.status").call();
    if (st2.payload().get_int("free") != 8)
      throw FluxException(Error(errc::proto, "free did not return nodes"));
  }(h.get()));
}

TEST(Resvc, ExhaustionIsEnospc) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(0);
  try {
    s.run([](Handle* hd) -> Task<void> {
      Json req = Json::object({{"jobid", "big"}, {"nnodes", 99}});
      co_await hd->request("resvc.alloc").payload(std::move(req)).call();
    }(h.get()));
    FAIL() << "expected ENOSPC";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::no_spc);
  }
}

TEST(Resvc, DuplicateJobidIsEexist) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(0);
  try {
    s.run([](Handle* hd) -> Task<void> {
      Json r1 = Json::object({{"jobid", "dup"}, {"nnodes", 1}});
      co_await hd->request("resvc.alloc").payload(std::move(r1)).call();
      Json r2 = Json::object({{"jobid", "dup"}, {"nnodes", 1}});
      co_await hd->request("resvc.alloc").payload(std::move(r2)).call();
    }(h.get()));
    FAIL() << "expected EEXIST";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::exist);
  }
}

// ---------------------------------------------------------------------------
// PMI bootstrap (the paper's KAP motivation: "distributed HPC software would
// use KVS operations in a coordinated fashion to exchange connection
// information among processes during its bootstrapping phase")
// ---------------------------------------------------------------------------

TEST(Pmi, FullBootstrapExchange) {
  constexpr int kProcs = 12;
  SimSession s(SimSession::default_config(4));
  std::vector<std::unique_ptr<Handle>> handles;
  int ok = 0;
  for (int p = 0; p < kProcs; ++p) {
    handles.push_back(s.attach(static_cast<NodeId>(p) % 4));
    co_spawn(
        s.ex(),
        [](Handle* h, int rank, int* done) -> Task<void> {
          Pmi pmi(*h, "job42", rank, kProcs);
          co_await pmi.init();
          // Publish our "business card", as an MPI runtime would.
          co_await pmi.put("card." + std::to_string(rank),
                           "addr-of-" + std::to_string(rank));
          co_await pmi.barrier();
          // Read every peer's card.
          for (int peer = 0; peer < kProcs; ++peer) {
            std::string card =
                co_await pmi.get("card." + std::to_string(peer));
            if (card != "addr-of-" + std::to_string(peer))
              throw FluxException(Error(errc::proto, "bad business card"));
          }
          co_await pmi.finalize();
          ++*done;
        }(handles.back().get(), p, &ok),
        "pmi-proc");
  }
  s.ex().run();
  EXPECT_EQ(ok, kProcs);
}

TEST(Pmi, BarrierPublishesPriorPuts) {
  SimSession s(SimSession::default_config(4));
  auto a = s.attach(1);
  auto b = s.attach(3);
  int stage = 0;
  co_spawn(s.ex(), [](Handle* h, int* st) -> Task<void> {
    Pmi pmi(*h, "j", 0, 2);
    co_await pmi.init();
    co_await pmi.put("k", "v");
    co_await pmi.barrier();
    *st += 1;
  }(a.get(), &stage), "pmi-a");
  co_spawn(s.ex(), [](Handle* h, int* st) -> Task<void> {
    Pmi pmi(*h, "j", 1, 2);
    co_await pmi.init();
    co_await pmi.barrier();
    // After the barrier the peer's put must be visible.
    std::string v = co_await pmi.get("k");
    if (v != "v") throw FluxException(Error(errc::proto, "put not visible"));
    *st += 1;
  }(b.get(), &stage), "pmi-b");
  s.ex().run();
  EXPECT_EQ(stage, 2);
}

TEST(Pmi, InitRecordsProcessTable) {
  SimSession s(SimSession::default_config(4));
  auto a = s.attach(2);
  auto b = s.attach(0);
  int done = 0;
  for (auto* h : {a.get(), b.get()}) {
    static int rank = 0;
    co_spawn(s.ex(), [](Handle* hd, int r, int* d) -> Task<void> {
      Pmi pmi(*hd, "ptab", r, 2);
      co_await pmi.init();
      ++*d;
    }(h, rank++, &done), "pmi");
  }
  s.ex().run();
  ASSERT_EQ(done, 2);
  auto h = s.attach(1);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json proc0 = co_await kvs.get("ptab.proc.0");
    if (proc0.get_int("broker_rank", -1) < 0)
      throw FluxException(Error(errc::proto, "no broker rank recorded"));
  }(h.get()));
}

}  // namespace
}  // namespace flux
