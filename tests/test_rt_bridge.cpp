// RtInstance: scheduling (§III) driving real execution on the run-time
// (§IV) — allocations map to broker ranks, jobs launch through wexec, and
// provenance lands in the KVS.
#include <gtest/gtest.h>

#include "core/rt_bridge.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

TEST(RtBridge, JobRunsOnBrokersAndRecordsProvenance) {
  SimSession s(SimSession::default_config(8));
  RtInstance rt(s.session());
  JobSpec spec = JobSpec::app("hostname-job", 4, std::chrono::milliseconds(5));
  auto id = rt.submit(spec, "hostname");
  ASSERT_TRUE(id.has_value());
  s.ex().run();
  EXPECT_EQ(rt.state(*id), JobState::Complete);
  EXPECT_TRUE(rt.idle());

  // Provenance + stdio in the KVS.
  auto h = s.attach(3);
  s.run([](Handle* hd, std::uint64_t jobid) -> Task<void> {
    KvsClient kvs(*hd);
    Json rec = co_await kvs.get("lwj.rt" + std::to_string(jobid) + ".record");
    if (rec.get_string("state") != "complete" || rec.get_int("nnodes") != 4)
      throw FluxException(Error(errc::proto, "bad job record"));
    // Per-rank stdio exists for the allocated ranks.
    auto dirs = co_await kvs.list_dir("lwj.rt" + std::to_string(jobid));
    if (dirs.size() != 5)  // 4 rank dirs + "record"
      throw FluxException(Error(errc::proto, "unexpected lwj layout"));
  }(h.get(), *id));
}

TEST(RtBridge, QueueingWhenSessionFull) {
  SimSession s(SimSession::default_config(4));
  RtInstance rt(s.session());
  JobSpec wide = JobSpec::app("wide", 4, std::chrono::milliseconds(5));
  std::vector<std::uint64_t> order;
  rt.on_complete([&](std::uint64_t id, bool ok) {
    ASSERT_TRUE(ok);
    order.push_back(id);
  });
  auto a = rt.submit(wide, "hostname");
  auto b = rt.submit(wide, "hostname");
  ASSERT_TRUE(a.has_value() && b.has_value());
  s.ex().run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], *a);
  EXPECT_EQ(order[1], *b);
}

TEST(RtBridge, FailingCommandMarksJobFailed) {
  SimSession s(SimSession::default_config(4));
  RtInstance rt(s.session());
  JobSpec spec = JobSpec::app("boom", 2, std::chrono::milliseconds(5));
  Json args = Json::object({{"code", 9}});
  auto id = rt.submit(spec, "exit", std::move(args));
  ASSERT_TRUE(id.has_value());
  bool reported_success = true;
  rt.on_complete([&](std::uint64_t, bool ok) { reported_success = ok; });
  s.ex().run();
  EXPECT_EQ(rt.state(*id), JobState::Failed);
  EXPECT_FALSE(reported_success);
}

TEST(RtBridge, ManyConcurrentSmallJobs) {
  SimSession s(SimSession::default_config(8));
  RtInstance rt(s.session(), "firstfit");
  int completed = 0;
  rt.on_complete([&](std::uint64_t, bool ok) {
    ASSERT_TRUE(ok);
    ++completed;
  });
  for (int i = 0; i < 12; ++i) {
    JobSpec spec =
        JobSpec::app("s" + std::to_string(i), 2, std::chrono::milliseconds(2));
    ASSERT_TRUE(rt.submit(spec, "hostname").has_value());
  }
  s.ex().run();
  EXPECT_EQ(completed, 12);
  EXPECT_TRUE(rt.idle());
}

}  // namespace
}  // namespace flux
