// Scheduling policies and the per-instance event-driven scheduler.
#include <gtest/gtest.h>

#include "exec/sim_executor.hpp"
#include "resource/pool.hpp"
#include "sched/scheduler.hpp"

namespace flux {
namespace {

struct SchedFixture {
  SchedFixture(std::string policy, std::uint32_t nnodes = 16)
      : graph(ResourceGraph::build_center("c", 1, 1, nnodes, 16, 32, 350, 100)),
        pool(graph),
        sched(ex, pool, make_policy(policy)) {}

  SimExecutor ex;
  ResourceGraph graph;
  ResourcePool pool;
  Scheduler sched;
};

TEST(Scheduler, FcfsRunsJobsInOrder) {
  SchedFixture f("fcfs");
  std::vector<std::uint64_t> started;
  f.sched.on_start([&](std::uint64_t id, const Allocation&) {
    started.push_back(id);
  });
  ResourceRequest req;
  req.nnodes = 4;
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(f.sched.submit(req, std::chrono::milliseconds(1)).has_value());
  f.ex.run();
  ASSERT_EQ(started.size(), 6u);
  EXPECT_TRUE(std::is_sorted(started.begin(), started.end()));
  EXPECT_EQ(f.sched.stats().completed, 6u);
  EXPECT_EQ(f.pool.free_nodes(), 16u);
}

TEST(Scheduler, InfeasibleSubmissionRejected) {
  SchedFixture f("fcfs");
  ResourceRequest req;
  req.nnodes = 999;
  EXPECT_FALSE(f.sched.submit(req, std::chrono::milliseconds(1)).has_value());
}

TEST(Scheduler, CancelPendingJob) {
  SchedFixture f("fcfs");
  ResourceRequest wide;
  wide.nnodes = 16;
  ResourceRequest blocked = wide;
  auto first = f.sched.submit(wide, std::chrono::milliseconds(5));
  auto second = f.sched.submit(blocked, std::chrono::milliseconds(5));
  ASSERT_TRUE(first.has_value() && second.has_value());
  f.ex.run_for(std::chrono::milliseconds(1));  // first started, second queued
  ASSERT_TRUE(f.sched.cancel(*second).has_value());
  f.ex.run();
  EXPECT_EQ(f.sched.stats().completed, 1u);
  EXPECT_EQ(f.sched.stats().canceled, 1u);
}

TEST(Scheduler, StrictFcfsHeadBlocksQueue) {
  SchedFixture f("fcfs");
  ResourceRequest half;
  half.nnodes = 8;
  ResourceRequest full;
  full.nnodes = 16;
  ResourceRequest small;
  small.nnodes = 1;
  std::vector<std::uint64_t> started;
  f.sched.on_start([&](std::uint64_t id, const Allocation&) {
    started.push_back(id);
  });
  auto a = f.sched.submit(half, std::chrono::milliseconds(10));
  auto b = f.sched.submit(full, std::chrono::milliseconds(1));   // blocked head
  auto c = f.sched.submit(small, std::chrono::milliseconds(1));  // behind it
  (void)a; (void)c;
  f.ex.run_for(std::chrono::milliseconds(5));
  // Under strict FCFS, c must NOT jump ahead of the blocked b.
  EXPECT_EQ(started.size(), 1u);
  f.ex.run();
  EXPECT_EQ(f.sched.stats().completed, 3u);
  EXPECT_EQ(started[1], *b);
}

TEST(Scheduler, EasyBackfillsShortNarrowJobs) {
  SchedFixture f("easy");
  ResourceRequest half;
  half.nnodes = 8;
  ResourceRequest full;
  full.nnodes = 16;
  ResourceRequest small;
  small.nnodes = 2;
  std::vector<std::uint64_t> started;
  f.sched.on_start([&](std::uint64_t id, const Allocation&) {
    started.push_back(id);
  });
  auto a = f.sched.submit(half, std::chrono::milliseconds(10));
  auto b = f.sched.submit(full, std::chrono::milliseconds(1));
  // Short job fits in the hole and finishes before the shadow time.
  auto c = f.sched.submit(small, std::chrono::milliseconds(2));
  (void)a; (void)b;
  f.ex.run_for(std::chrono::milliseconds(5));
  ASSERT_GE(started.size(), 2u);
  EXPECT_EQ(started[1], *c);  // backfilled ahead of the blocked head
  f.ex.run();
  EXPECT_EQ(f.sched.stats().completed, 3u);
}

TEST(Scheduler, EasyDoesNotDelayReservation) {
  SchedFixture f("easy");
  ResourceRequest half;
  half.nnodes = 8;
  ResourceRequest full;
  full.nnodes = 16;
  ResourceRequest long_narrow;
  long_narrow.nnodes = 10;  // would collide with the head's reservation
  std::vector<std::uint64_t> started;
  f.sched.on_start([&](std::uint64_t id, const Allocation&) {
    started.push_back(id);
  });
  auto a = f.sched.submit(half, std::chrono::milliseconds(10));
  auto b = f.sched.submit(full, std::chrono::milliseconds(1));
  auto c = f.sched.submit(long_narrow, std::chrono::milliseconds(100));
  (void)a; (void)c;
  f.ex.run_for(std::chrono::milliseconds(5));
  // c is long and wide enough to delay b: it must not have started.
  EXPECT_EQ(started.size(), 1u);
  f.ex.run();
  // Eventually order is a, b, c.
  ASSERT_EQ(started.size(), 3u);
  EXPECT_EQ(started[1], *b);
}

TEST(Scheduler, FirstFitStartsAnythingThatFits) {
  SchedFixture f("firstfit");
  ResourceRequest half;
  half.nnodes = 8;
  ResourceRequest full;
  full.nnodes = 16;
  ResourceRequest small;
  small.nnodes = 2;
  std::vector<std::uint64_t> started;
  f.sched.on_start([&](std::uint64_t id, const Allocation&) {
    started.push_back(id);
  });
  (void)f.sched.submit(half, std::chrono::milliseconds(10));
  auto blocked_head = f.sched.submit(full, std::chrono::milliseconds(1));
  auto tiny = f.sched.submit(small, std::chrono::milliseconds(30));
  (void)blocked_head;
  f.ex.run_for(std::chrono::milliseconds(5));
  // first-fit skips the blocked full-size head and starts the tiny job.
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(started[1], *tiny);
  f.ex.run();
  EXPECT_EQ(f.sched.stats().completed, 3u);
}

TEST(Scheduler, WaitTimeAccounting) {
  SchedFixture f("fcfs");
  ResourceRequest full;
  full.nnodes = 16;
  (void)f.sched.submit(full, std::chrono::milliseconds(4));
  (void)f.sched.submit(full, std::chrono::milliseconds(4));
  f.ex.run();
  // Second job waited ~4ms for the first to finish.
  EXPECT_GE(f.sched.stats().wait_time_total, std::chrono::milliseconds(3));
  EXPECT_EQ(f.sched.stats().completed, 2u);
}

TEST(Scheduler, PassesCostVirtualTimeAndSerialize) {
  SchedFixture f("fcfs");
  ResourceRequest one;
  one.nnodes = 1;
  for (int i = 0; i < 50; ++i)
    (void)f.sched.submit(one, std::chrono::microseconds(10));
  f.ex.run();
  EXPECT_EQ(f.sched.stats().completed, 50u);
  EXPECT_GT(f.sched.stats().passes, 0u);
  EXPECT_GT(f.sched.stats().sched_busy.count(), 0);
}

TEST(Scheduler, IdleCallbackFiresWhenDrained) {
  SchedFixture f("fcfs");
  int idle_events = 0;
  f.sched.on_idle([&] { ++idle_events; });
  ResourceRequest one;
  one.nnodes = 1;
  (void)f.sched.submit(one, std::chrono::microseconds(5));
  f.ex.run();
  EXPECT_GE(idle_events, 1);
  EXPECT_TRUE(f.sched.idle());
}

TEST(Scheduler, ManualCompletionJobs) {
  SchedFixture f("fcfs");
  std::uint64_t started_id = 0;
  f.sched.on_start([&](std::uint64_t id, const Allocation&) {
    started_id = id;
  });
  auto id = f.sched.submit({.nnodes = 2}, std::chrono::milliseconds(1), 0,
                           /*manual_completion=*/true);
  ASSERT_TRUE(id.has_value());
  f.ex.run();
  EXPECT_EQ(started_id, *id);
  EXPECT_EQ(f.sched.running_count(), 1u);  // walltime elapsed but still alive
  f.sched.finish(*id);
  f.ex.run();
  EXPECT_EQ(f.sched.stats().completed, 1u);
  EXPECT_TRUE(f.sched.idle());
}

TEST(PolicyFactory, KnownAndUnknownNames) {
  EXPECT_EQ(make_policy("fcfs")->name(), "fcfs");
  EXPECT_EQ(make_policy("firstfit")->name(), "firstfit");
  EXPECT_EQ(make_policy("easy")->name(), "easy");
  EXPECT_THROW(make_policy("sjf"), std::invalid_argument);
}

}  // namespace
}  // namespace flux
