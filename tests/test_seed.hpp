// Unified test seeding. Every seeded suite (chaos, property, dst) derives
// its base seed from the FLUX_TEST_SEED environment variable, so one knob
// re-rolls the whole randomized surface:
//
//   FLUX_TEST_SEED=12345 ctest -L chaos -L property -L dst
//
// Suites add fixed per-category offsets to the base so categories stay
// distinct, and print the effective seed on every failure (SCOPED_TRACE), so
// a red run names the exact seed to replay.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace flux::testing {

/// Base seed: $FLUX_TEST_SEED (any strtoull-parsable form), default 1.
inline std::uint64_t test_seed() {
  if (const char* env = std::getenv("FLUX_TEST_SEED")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 0);
    if (v != 0) return v;
  }
  return 1;
}

}  // namespace flux::testing
