// Session-level behavior: configuration plumbing, attach lifecycle, stats,
// and broker bookkeeping not covered by the routing/module suites.
#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

TEST(Session, SingleBrokerSessionWorks) {
  SimSession s(SimSession::default_config(1));
  auto h = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("solo", 1);
    co_await kvs.commit();
    Json v = co_await kvs.get("solo");
    if (v != Json(1)) throw FluxException(Error(errc::proto, "bad"));
    co_await hd->barrier("solo", 1);
    (void)co_await hd->ping(0);
  }(h.get()));
}

TEST(Session, AttachOutOfRangeThrows) {
  SimSession s(SimSession::default_config(4));
  EXPECT_THROW((void)s.attach(4), std::out_of_range);
}

TEST(Session, ModuleConfigReachesModules) {
  SessionConfig cfg = SimSession::default_config(2);
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 12345}})}});
  SimSession s(cfg);
  auto h = s.attach(0);
  Message resp = s.run(h->request("hb.get").call());
  EXPECT_EQ(resp.payload().get_int("period_us"), 12345);
}

TEST(Session, CustomModuleSetHonored) {
  SessionConfig cfg = SimSession::default_config(4);
  cfg.modules = {"hb", "kvs"};
  SimSession s(cfg);
  EXPECT_NE(s.session().broker(1).find_module("kvs"), nullptr);
  EXPECT_EQ(s.session().broker(1).find_module("barrier"), nullptr);
  // A request for an unloaded service errors at the root.
  auto h = s.attach(3);
  Message resp = s.run([](Handle* hd) -> Task<Message> {
    Message r = co_await hd->request("barrier.enter").send();
    co_return r;
  }(h.get()));
  EXPECT_EQ(resp.errnum, static_cast<int>(errc::nosys));
}

TEST(Session, UnknownModuleNameThrows) {
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = 2;
  cfg.modules = {"hb", "frobnicator"};
  EXPECT_THROW((void)Session::create_sim(ex, cfg), std::invalid_argument);
}

TEST(Session, BrokerStatsAccumulate) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(7);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("stat.k", 1);
    co_await kvs.commit();
    (void)co_await kvs.get("stat.k");
    hd->publish("stats.test");
  }(h.get()));
  s.ex().run();
  const auto& leaf = s.session().broker(7).stats();
  EXPECT_GT(leaf.requests_dispatched, 0u);
  EXPECT_GT(leaf.events_delivered, 0u);
  EXPECT_GT(leaf.responses_routed, 0u);
  const auto& root = s.session().broker(0).stats();
  EXPECT_GT(root.events_published, 0u);  // setroot events sequenced at root
}

TEST(Session, NetStatsCountTraffic) {
  SimSession s(SimSession::default_config(8));
  const auto before = s.session().simnet()->stats().messages;
  auto h = s.attach(5);
  s.run(h->request("cmb.info").call());
  EXPECT_GT(s.session().simnet()->stats().messages, before);
}

TEST(Session, LargeSessionWiresUp) {
  SimSession s(SimSession::default_config(512));
  EXPECT_TRUE(s.session().all_online());
  // Deepest leaf can reach services.
  auto h = s.attach(511);
  Message resp = s.run(h->request("cmb.info").call());
  EXPECT_EQ(resp.payload().get_int("depth"), 9);  // heap path 511 -> ... -> 0
}

TEST(Session, KeepaliveMessagesAreIgnored) {
  SimSession s(SimSession::default_config(2));
  Message keepalive;
  keepalive.type = MsgType::Keepalive;
  s.session().send(1, 0, std::move(keepalive));
  EXPECT_NO_THROW(s.ex().run());
}

}  // namespace
}  // namespace flux
