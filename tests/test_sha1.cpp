// SHA1 correctness: FIPS-180 vectors, streaming equivalence, parsing.
#include <gtest/gtest.h>

#include "hash/sha1.hpp"

namespace flux {
namespace {

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(Sha1::of("abc").hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::of("").hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(
      Sha1::of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1Stream s;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk);
  EXPECT_EQ(s.digest().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly and with "
      "increasing enthusiasm, until the buffer boundary is crossed.";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha1Stream s;
    s.update(std::string_view(data).substr(0, split));
    s.update(std::string_view(data).substr(split));
    EXPECT_EQ(s.digest(), Sha1::of(data)) << "split at " << split;
  }
}

TEST(Sha1, BlockBoundaries) {
  // Lengths straddling the 55/56/64-byte padding boundaries.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string data(len, 'x');
    Sha1Stream s;
    s.update(data);
    EXPECT_EQ(s.digest(), Sha1::of(data)) << "len " << len;
  }
}

TEST(Sha1, ParseRoundTrip) {
  const Sha1 digest = Sha1::of("roundtrip");
  const auto parsed = Sha1::parse(digest.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, digest);
}

TEST(Sha1, ParseRejectsBadInput) {
  EXPECT_FALSE(Sha1::parse("").has_value());
  EXPECT_FALSE(Sha1::parse("abc").has_value());
  EXPECT_FALSE(Sha1::parse(std::string(40, 'g')).has_value());
  EXPECT_FALSE(Sha1::parse(std::string(39, 'a')).has_value());
  EXPECT_FALSE(Sha1::parse(std::string(42, 'a')).has_value());
}

TEST(Sha1, ShortHex) {
  EXPECT_EQ(Sha1::of("abc").short_hex(), "a9993e36");
}

TEST(Sha1, DefaultIsZero) {
  EXPECT_EQ(Sha1{}.hex(), std::string(40, '0'));
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1::of("a"), Sha1::of("b"));
  EXPECT_NE(Sha1::of("content-1"), Sha1::of("content-2"));
}

TEST(Sha1, StdHashUsable) {
  std::hash<Sha1> h;
  EXPECT_NE(h(Sha1::of("a")), h(Sha1::of("b")));
}

}  // namespace
}  // namespace flux
