// Network simulator: latency, bandwidth serialization, receive processing,
// failure injection — the mechanisms behind the paper-figure shapes.
#include <gtest/gtest.h>

#include "net/simnet.hpp"

namespace flux {
namespace {

struct NetFixture {
  explicit NetFixture(NetParams p = NetParams{}, std::uint32_t n = 4)
      : net(ex, p, n) {
    net.set_delivery([this](NodeId to, Message msg) {
      deliveries.emplace_back(ex.now(), to, std::move(msg));
    });
  }
  SimExecutor ex;
  SimNet net;
  std::vector<std::tuple<TimePoint, NodeId, Message>> deliveries;
};

NetParams simple_params() {
  NetParams p;
  p.link.latency = Duration{1000};
  p.link.bytes_per_ns = 1.0;
  p.link.per_msg_overhead = Duration{0};
  p.recv_fixed = Duration{0};
  p.recv_bytes_per_ns = 1e9;  // negligible processing
  return p;
}

TEST(SimNet, DeliveryTimeIncludesLatencyAndTransfer) {
  NetFixture f(simple_params());
  Message m = Message::request("x");
  const auto size = static_cast<Duration::rep>(m.wire_size());
  f.net.send(0, 1, m);
  f.ex.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  // transfer (size @ 1 B/ns) + latency 1000ns.
  EXPECT_EQ(std::get<0>(f.deliveries[0]), TimePoint{size + 1000});
}

TEST(SimNet, LinkSerializesBackToBackMessages) {
  NetFixture f(simple_params());
  Message m = Message::request("x");
  const auto size = static_cast<Duration::rep>(m.wire_size());
  f.net.send(0, 1, m);
  f.net.send(0, 1, m);  // same link: must queue behind the first
  f.ex.run();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(std::get<0>(f.deliveries[1]) - std::get<0>(f.deliveries[0]),
            Duration{size});
}

TEST(SimNet, DistinctLinksDontSerialize) {
  NetFixture f(simple_params());
  Message m = Message::request("x");
  f.net.send(0, 1, m);
  f.net.send(2, 3, m);  // different link: parallel
  f.ex.run();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(std::get<0>(f.deliveries[0]), std::get<0>(f.deliveries[1]));
}

TEST(SimNet, ReceiverProcessingSerializes) {
  NetParams p = simple_params();
  p.recv_fixed = Duration{500};
  NetFixture f(p);
  Message m = Message::request("x");
  f.net.send(0, 3, m);
  f.net.send(1, 3, m);  // different links, same receiver
  f.net.send(2, 3, m);
  f.ex.run();
  ASSERT_EQ(f.deliveries.size(), 3u);
  // Deliveries spaced by at least the receive processing cost.
  EXPECT_GE(std::get<0>(f.deliveries[1]) - std::get<0>(f.deliveries[0]),
            Duration{500});
  EXPECT_GE(std::get<0>(f.deliveries[2]) - std::get<0>(f.deliveries[1]),
            Duration{500});
}

TEST(SimNet, BigMessagesTakeProportionallyLonger) {
  NetFixture f(simple_params());
  Message small = Message::request("x");
  Message big = Message::request("x");
  big.set_data(std::make_shared<const std::string>(std::string(10000, 'z')));
  f.net.send(0, 1, small);
  f.net.send(2, 1, big);
  f.ex.run();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_GT(std::get<0>(f.deliveries[1]) - std::get<0>(f.deliveries[0]),
            Duration{9000});
}

TEST(SimNet, FailedNodesDropTraffic) {
  NetFixture f(simple_params());
  f.net.fail(1);
  Message m = Message::request("x");
  f.net.send(0, 1, m);  // to dead
  f.net.send(1, 0, m);  // from dead
  f.ex.run();
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.net.stats().dropped, 2u);
  f.net.restore(1);
  f.net.send(0, 1, m);
  f.ex.run();
  EXPECT_EQ(f.deliveries.size(), 1u);
}

TEST(SimNet, InFlightToFailedNodeSuppressed) {
  NetFixture f(simple_params());
  Message m = Message::request("x");
  f.net.send(0, 1, m);  // in flight...
  f.net.fail(1);        // ...dies before arrival
  f.ex.run();
  EXPECT_TRUE(f.deliveries.empty());
}

TEST(SimNet, StatsAccumulate) {
  NetFixture f(simple_params());
  Message m = Message::request("topic.one");
  f.net.send(0, 1, m);
  f.net.send(1, 2, m);
  EXPECT_EQ(f.net.stats().messages, 2u);
  EXPECT_EQ(f.net.stats().bytes, 2 * m.wire_size());
  f.net.reset_stats();
  EXPECT_EQ(f.net.stats().messages, 0u);
}

TEST(SimNet, LoopbackUsesLoopbackParams) {
  NetParams p = simple_params();
  p.loopback.latency = Duration{10};
  p.loopback.bytes_per_ns = 1e9;
  p.loopback.per_msg_overhead = Duration{0};
  NetFixture f(p);
  Message m = Message::request("x");
  f.net.send(2, 2, m);
  f.ex.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_LE(std::get<0>(f.deliveries[0]), TimePoint{11});
}

}  // namespace
}  // namespace flux
