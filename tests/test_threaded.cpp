// Threaded sessions: the same broker/module/KVS code on real reactor
// threads with wire-codec transport, driven through the blocking SyncHandle.
#include <gtest/gtest.h>

#include <thread>

#include "api/sync_handle.hpp"
#include "broker/session.hpp"
#include "fault/plan.hpp"

namespace flux {
namespace {

SessionConfig threaded_config(std::uint32_t size) {
  SessionConfig cfg;
  cfg.size = size;
  // Generous liveness bound: under sanitizers (tsan slows execution ~10x) a
  // reactor can miss several 2ms heartbeats, and a falsely-declared broker
  // never rejoins (split-brain recovery is future work) — these are not
  // failure tests, so make false positives impossible.
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 2000}})},
                    {"live", Json::object({{"missed_max", 1 << 20}})}});
  return cfg;
}

TEST(Threaded, SessionComesOnline) {
  auto session = Session::create_threaded(threaded_config(8));
  EXPECT_TRUE(session->wait_online());
}

TEST(Threaded, KvsPutCommitGetAcrossBrokers) {
  auto session = Session::create_threaded(threaded_config(8));
  ASSERT_TRUE(session->wait_online());
  SyncHandle writer(*session, 7);
  SyncHandle reader(*session, 4);
  writer.kvs_put("t.key", Json::object({{"n", 5}}));
  const CommitResult r = writer.kvs_commit();
  EXPECT_GT(r.version, 1u);
  reader.kvs_wait_version(r.version);
  Json v = reader.kvs_get("t.key");
  EXPECT_EQ(v.get_int("n"), 5);
}

TEST(Threaded, RingPingAndEvents) {
  auto session = Session::create_threaded(threaded_config(4));
  ASSERT_TRUE(session->wait_online());
  SyncHandle h(*session, 1);
  Json pong = h.ping(3);
  EXPECT_EQ(pong.get_int("rank"), 3);
}

TEST(Threaded, ConcurrentClientsFence) {
  auto session = Session::create_threaded(threaded_config(4));
  ASSERT_TRUE(session->wait_online());
  constexpr int kProcs = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int p = 0; p < kProcs; ++p) {
    threads.emplace_back([&session, p, &ok] {
      SyncHandle h(*session, static_cast<NodeId>(p % 4));
      h.kvs_put("thr.k" + std::to_string(p), p);
      h.kvs_fence("thr-fence", kProcs);
      // After the fence every peer's value is visible.
      for (int q = 0; q < kProcs; ++q) {
        Json v = h.kvs_get("thr.k" + std::to_string(q));
        if (v != Json(q)) return;
      }
      ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kProcs);
}

TEST(Threaded, BarrierAcrossThreads) {
  auto session = Session::create_threaded(threaded_config(4));
  ASSERT_TRUE(session->wait_online());
  constexpr int kProcs = 6;
  std::atomic<int> entered{0};
  std::atomic<int> released{0};
  std::atomic<bool> early{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProcs; ++p) {
    threads.emplace_back([&] {
      SyncHandle h(*session, 2);
      entered.fetch_add(1);
      h.barrier("thr-barrier", kProcs);
      // Nobody may exit before everyone entered.
      if (entered.load() < kProcs) early.store(true);
      released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), kProcs);
  EXPECT_FALSE(early.load());
}

TEST(Threaded, RpcErrorsSurfaceAsExceptions) {
  auto session = Session::create_threaded(threaded_config(2));
  ASSERT_TRUE(session->wait_online());
  SyncHandle h(*session, 1);
  try {
    (void)h.kvs_get("missing.key");
    FAIL() << "expected ENOENT";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::noent);
  }
}

TEST(Threaded, FaultInjectorCoversWireTransport) {
  // The injector hooks Session::send, which both transports share — so a
  // drop-everything policy toward one rank makes a retried RPC from a real
  // client thread resolve with a typed timeout instead of blocking forever.
  // (Deterministic despite threads: drop probability 1.0 needs no RNG order.)
  fault::FaultPlan plan(7);  // declared before the session: must outlive it
  fault::LinkPolicy lossy;
  lossy.to = 3;
  lossy.drop = 1.0;
  plan.link(lossy);

  SessionConfig cfg = threaded_config(4);
  cfg.rpc = RetryPolicy{std::chrono::milliseconds(50), 1,
                        std::chrono::milliseconds(1)};
  auto session = Session::create_threaded(cfg);
  ASSERT_TRUE(session->wait_online());
  plan.arm(*session);

  SyncHandle h(*session, 1);
  try {
    (void)h.ping(3);
    FAIL() << "expected flux::errc::timeout";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::timeout);
  }
  EXPECT_GT(plan.faults_injected(), 0u);
}

TEST(Threaded, WireCodecCarriesAttachments) {
  // Fences ship ObjectBundles; in threaded mode they cross the codec.
  auto session = Session::create_threaded(threaded_config(4));
  ASSERT_TRUE(session->wait_online());
  SyncHandle h(*session, 3);
  h.kvs_put("att.k", std::string(4096, 'x'));
  h.kvs_commit();
  Json v = h.kvs_get("att.k");
  EXPECT_EQ(v.as_string().size(), 4096u);
}

}  // namespace
}  // namespace flux
