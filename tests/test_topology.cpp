// Overlay topology: k-ary trees, rings, healing.
#include <gtest/gtest.h>

#include <set>

#include "net/topology.hpp"

namespace flux {
namespace {

TEST(Topology, BinaryTreeShape) {
  auto t = Topology::tree(7, 2);
  EXPECT_FALSE(t.parent(0).has_value());
  EXPECT_EQ(*t.parent(1), 0u);
  EXPECT_EQ(*t.parent(2), 0u);
  EXPECT_EQ(*t.parent(3), 1u);
  EXPECT_EQ(*t.parent(6), 2u);
  EXPECT_EQ(t.children(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(t.children(1), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(3), 2u);
  EXPECT_EQ(t.height(), 2u);
}

TEST(Topology, SingleNode) {
  auto t = Topology::tree(1, 2);
  EXPECT_FALSE(t.parent(0).has_value());
  EXPECT_TRUE(t.children(0).empty());
  EXPECT_EQ(t.height(), 0u);
  EXPECT_EQ(t.ring_next(0), 0u);
}

class TopologyArity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologyArity, EveryRankReachesRoot) {
  const std::uint32_t arity = GetParam();
  auto t = Topology::tree(64, arity);
  for (NodeId r = 0; r < 64; ++r) {
    NodeId cur = r;
    unsigned hops = 0;
    while (auto p = t.parent(cur)) {
      cur = *p;
      ASSERT_LE(++hops, 64u);
    }
    EXPECT_EQ(cur, 0u);
    EXPECT_EQ(t.depth(r), hops);
  }
}

TEST_P(TopologyArity, SubtreePartitionsRanks) {
  const std::uint32_t arity = GetParam();
  auto t = Topology::tree(33, arity);
  std::set<NodeId> all;
  // Root's subtree covers everything exactly once.
  for (NodeId r : t.subtree(0)) EXPECT_TRUE(all.insert(r).second);
  EXPECT_EQ(all.size(), 33u);
  // Children subtrees are disjoint.
  std::set<NodeId> seen;
  for (NodeId c : t.children(0))
    for (NodeId r : t.subtree(c)) EXPECT_TRUE(seen.insert(r).second);
  EXPECT_EQ(seen.size(), 32u);
}

TEST_P(TopologyArity, ChildCountsBounded) {
  const std::uint32_t arity = GetParam();
  auto t = Topology::tree(100, arity);
  for (NodeId r = 0; r < 100; ++r)
    EXPECT_LE(t.children(r).size(), arity);
}

INSTANTIATE_TEST_SUITE_P(Arities, TopologyArity,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

TEST(Topology, RingHops) {
  auto t = Topology::tree(8, 2);
  EXPECT_EQ(t.ring_next(7), 0u);
  EXPECT_EQ(t.ring_next(3), 4u);
  EXPECT_EQ(t.ring_hops(2, 5), 3u);
  EXPECT_EQ(t.ring_hops(5, 2), 5u);
  EXPECT_EQ(t.ring_hops(4, 4), 0u);
}

TEST(Topology, HealAroundInteriorNode) {
  auto t = Topology::tree(15, 2);  // node 1 has children 3,4
  const auto moved = t.heal_around(1);
  EXPECT_EQ(moved, (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(*t.parent(3), 0u);
  EXPECT_EQ(*t.parent(4), 0u);
  EXPECT_FALSE(t.parent(1).has_value());
  // Node 1 is detached from the root's children.
  const auto& root_children = t.children(0);
  EXPECT_EQ(std::count(root_children.begin(), root_children.end(), 1u), 0);
  // Deeper descendants keep their subtree (7's parent is still 3).
  EXPECT_EQ(*t.parent(7), 3u);
  // Depths reflect the healed tree.
  EXPECT_EQ(t.depth(3), 1u);
  EXPECT_EQ(t.depth(7), 2u);
}

TEST(Topology, HealRootRejected) {
  auto t = Topology::tree(3, 2);
  EXPECT_THROW(t.heal_around(0), std::invalid_argument);
}

TEST(Topology, ReparentCycleRejected) {
  auto t = Topology::tree(7, 2);
  EXPECT_THROW(t.reparent(1, 3), std::invalid_argument);  // 3 is under 1
  EXPECT_THROW(t.reparent(2, 2), std::invalid_argument);
}

TEST(Topology, ReparentMovesSubtree) {
  auto t = Topology::tree(7, 2);
  t.reparent(5, 1);  // move 5 (child of 2) under 1
  EXPECT_EQ(*t.parent(5), 1u);
  EXPECT_EQ(t.children(2), (std::vector<NodeId>{6}));
  EXPECT_EQ(t.depth(5), 2u);
}

TEST(Topology, InvalidConstruction) {
  EXPECT_THROW(Topology::tree(0, 2), std::invalid_argument);
  EXPECT_THROW(Topology::tree(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace flux
