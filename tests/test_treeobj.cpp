// KVS tree objects, content store, transaction apply — the paper's §IV-B
// worked example plus hash-tree invariants as properties.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "kvs/content_store.hpp"
#include "kvs/object_bundle.hpp"
#include "kvs/treeobj.hpp"

namespace flux {
namespace {

TEST(TreeObj, ValueObjectShape) {
  ObjPtr v = make_val_object(42);
  EXPECT_TRUE(v->is_val());
  EXPECT_FALSE(v->is_dir());
  EXPECT_EQ(v->value(), Json(42));
  EXPECT_EQ(v->id, Sha1::of(v->bytes));
}

TEST(TreeObj, ContentAddressingDeduplicates) {
  EXPECT_EQ(make_val_object("same")->id, make_val_object("same")->id);
  EXPECT_NE(make_val_object("a")->id, make_val_object("b")->id);
  // Int and double values are distinct content.
  EXPECT_NE(make_val_object(1)->id, make_val_object(1.0)->id);
}

TEST(TreeObj, DirObjectShape) {
  const Sha1 ref = Sha1::of("x");
  ObjPtr d = make_dir_object({{"alpha", ref}});
  EXPECT_TRUE(d->is_dir());
  EXPECT_EQ(d->entries().at("alpha").as_string(), ref.hex());
}

TEST(TreeObj, ParseRejectsMalformed) {
  EXPECT_EQ(parse_object("not json"), nullptr);
  EXPECT_EQ(parse_object(R"({"t":"weird"})"), nullptr);
  EXPECT_EQ(parse_object(R"({"t":"dir","e":{"a":"nothex"}})"), nullptr);
  EXPECT_EQ(parse_object(R"({"t":"val"})"), nullptr);  // no "d"
  EXPECT_NE(parse_object(R"({"d":7,"t":"val"})"), nullptr);
}

TEST(TreeObj, ParseRoundTripsSerialization) {
  ObjPtr v = make_val_object(Json::object({{"k", "v"}}));
  ObjPtr back = parse_object(v->bytes);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->id, v->id);
  EXPECT_EQ(back->doc, v->doc);
}

TEST(TreeObj, SplitKey) {
  EXPECT_EQ(split_key("a.b.c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_key("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_TRUE(split_key(".").empty());
  EXPECT_TRUE(split_key("").empty());
  EXPECT_EQ(split_key("a..b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_key(".lead.trail."),
            (std::vector<std::string>{"lead", "trail"}));
}

TEST(TreeObj, TuplesJsonRoundTrip) {
  std::vector<Tuple> tuples{{"a.b", Sha1::of("1")}, {"c", Sha1{}}};
  auto back = tuples_from_json(tuples_to_json(tuples));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].key, "a.b");
  EXPECT_EQ((*back)[0].ref, Sha1::of("1"));
  EXPECT_TRUE((*back)[1].is_unlink());
  EXPECT_FALSE(tuples_from_json(Json(3)).has_value());
  EXPECT_FALSE(tuples_from_json(Json::array({Json::array({"k"})})).has_value());
}

// ---------------------------------------------------------------------------
// The paper's §IV-B worked example: update a.b.c and get a new root ref.
// ---------------------------------------------------------------------------

TEST(Apply, PaperWorkedExample) {
  ContentStore store;
  ObjPtr empty = empty_dir_object();
  store.put(empty);

  ObjPtr v42 = make_val_object(42);
  store.put(v42);
  const Sha1 root1 = apply_transaction(store, empty->id, {{"a.b.c", v42->id}});

  // Walk: root -> a -> b -> c, exactly as the paper's lookup enumerates.
  ObjPtr root = store.get(root1);
  ASSERT_TRUE(root && root->is_dir());
  ObjPtr a = store.get(*Sha1::parse(root->entries().at("a").as_string()));
  ASSERT_TRUE(a && a->is_dir());
  ObjPtr b = store.get(*Sha1::parse(a->entries().at("b").as_string()));
  ASSERT_TRUE(b && b->is_dir());
  ObjPtr c = store.get(*Sha1::parse(b->entries().at("c").as_string()));
  ASSERT_TRUE(c && c->is_val());
  EXPECT_EQ(c->value(), Json(42));

  // "An important property of this structure is that any update results in
  // a new SHA1 root reference."
  ObjPtr v43 = make_val_object(43);
  store.put(v43);
  const Sha1 root2 = apply_transaction(store, root1, {{"a.b.c", v43->id}});
  EXPECT_NE(root2, root1);

  // Old and new snapshots coexist ("both new and old objects coexist in the
  // caches, the switch from old to new root is atomic").
  ObjPtr old_root = store.get(root1);
  ObjPtr old_a = store.get(*Sha1::parse(old_root->entries().at("a").as_string()));
  ObjPtr old_b = store.get(*Sha1::parse(old_a->entries().at("b").as_string()));
  ObjPtr old_c = store.get(*Sha1::parse(old_b->entries().at("c").as_string()));
  EXPECT_EQ(old_c->value(), Json(42));
}

TEST(Apply, UnlinkAndMissingUnlink) {
  ContentStore store;
  store.put(empty_dir_object());
  ObjPtr v = make_val_object("v");
  store.put(v);
  Sha1 root = apply_transaction(store, empty_dir_object()->id,
                                {{"x", v->id}, {"y", v->id}});
  root = apply_transaction(store, root, {Tuple{"x", Sha1{}}});
  ObjPtr dir = store.get(root);
  EXPECT_FALSE(dir->entries().contains("x"));
  EXPECT_TRUE(dir->entries().contains("y"));
  // Unlinking a missing key is a no-op, not an error.
  const Sha1 same = apply_transaction(store, root, {Tuple{"zzz", Sha1{}}});
  EXPECT_EQ(same, root);
}

TEST(Apply, IdenticalContentGivesIdenticalRoots) {
  // Canonical serialization: applying equal logical states from different
  // orders converges to one root hash.
  ContentStore s1, s2;
  s1.put(empty_dir_object());
  s2.put(empty_dir_object());
  ObjPtr v1 = make_val_object(1), v2 = make_val_object(2);
  s1.put(v1); s1.put(v2);
  s2.put(v1); s2.put(v2);
  const Sha1 r1 = apply_transaction(
      s1, empty_dir_object()->id, {{"a.x", v1->id}, {"a.y", v2->id}});
  const Sha1 r2 = apply_transaction(
      s2, empty_dir_object()->id, {{"a.y", v2->id}, {"a.x", v1->id}});
  EXPECT_EQ(r1, r2);
}

TEST(Apply, BatchedFenceEqualsSequentialCommits) {
  // Property: one batched apply == the composition of singleton applies.
  Rng rng(123);
  ContentStore batched, sequential;
  batched.put(empty_dir_object());
  sequential.put(empty_dir_object());
  std::vector<Tuple> tuples;
  for (int i = 0; i < 200; ++i) {
    ObjPtr v = make_val_object(rng.bytes(8));
    batched.put(v);
    sequential.put(v);
    tuples.push_back(Tuple{
        "d" + std::to_string(rng.below(8)) + ".k" + std::to_string(rng.below(50)),
        v->id});
  }
  const Sha1 one_shot =
      apply_transaction(batched, empty_dir_object()->id, tuples);
  Sha1 step = empty_dir_object()->id;
  for (const Tuple& t : tuples)
    step = apply_transaction(sequential, step, {t});
  EXPECT_EQ(one_shot, step);
}

TEST(ContentStore, PutIsIdempotent) {
  ContentStore store;
  ObjPtr v = make_val_object("x");
  EXPECT_TRUE(store.put(v));
  EXPECT_FALSE(store.put(v));
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.bytes(), v->size());
}

TEST(ObjectCache, PinPreventsExpiry) {
  ObjectCache cache;
  ObjPtr a = make_val_object("a"), b = make_val_object("b");
  cache.put(a, 1);
  cache.put(b, 1);
  cache.pin(a->id);
  EXPECT_EQ(cache.expire(100, 10), 1u);  // only b evicted
  EXPECT_NE(cache.get(a->id, 100), nullptr);
  cache.unpin(a->id);
  EXPECT_EQ(cache.expire(200, 10), 1u);
  EXPECT_EQ(cache.count(), 0u);
}

TEST(ObjectCache, GetRefreshesLastUse) {
  ObjectCache cache;
  ObjPtr a = make_val_object("a");
  cache.put(a, 1);
  EXPECT_NE(cache.get(a->id, 50), nullptr);  // refresh at epoch 50
  EXPECT_EQ(cache.expire(55, 10), 0u);       // recently used: kept
  EXPECT_EQ(cache.expire(100, 10), 1u);
}

// Bucketed expiry examines only stale-bucket candidates, not the whole
// cache: repeated expire() calls over a hot cache do near-zero scan work.
TEST(ObjectCache, ExpiryScansCandidatesNotWholeCache) {
  ObjectCache cache;
  std::vector<ObjPtr> objs;
  for (int i = 0; i < 100; ++i) {
    objs.push_back(make_val_object(i));
    cache.put(objs.back(), 1);
  }
  // Keep half hot at epoch 10; the other half goes stale.
  for (int i = 0; i < 50; ++i) (void)cache.get(objs[i]->id, 10);
  const std::uint64_t hits_before = cache.stats().hits;

  EXPECT_EQ(cache.expire(6, 5), 0u);    // cutoff 1: epoch-1 uses still fresh
  EXPECT_EQ(cache.expire(10, 5), 50u);  // cutoff 5: epoch-1 bucket drained
  EXPECT_EQ(cache.count(), 50u);

  // Draining the epoch-1 bucket examined each of its 100 candidates once
  // (50 evicted + 50 refreshed-at-10 duplicates), not count() per pass as a
  // full scan would.
  EXPECT_LE(cache.stats().expire_scanned, 100u);
  // Idle repeat passes are free: every remaining entry's bucket survives.
  const std::uint64_t scanned = cache.stats().expire_scanned;
  for (int pass = 0; pass < 10; ++pass) EXPECT_EQ(cache.expire(10, 5), 0u);
  EXPECT_EQ(cache.stats().expire_scanned, scanned);
  // Expiry accounting never touches hit/miss stats.
  EXPECT_EQ(cache.stats().hits, hits_before);
  EXPECT_EQ(cache.stats().evictions, 50u);
}

// A pinned entry skipped by an expiry pass is still evicted by a later pass
// after unpinning, even if it was never touched in between.
TEST(ObjectCache, BucketedExpiryReconsidersUnpinned) {
  ObjectCache cache;
  ObjPtr a = make_val_object("a");
  cache.put(a, 1);
  cache.pin(a->id);
  EXPECT_EQ(cache.expire(100, 10), 0u);
  cache.unpin(a->id);
  EXPECT_EQ(cache.expire(200, 10), 1u);
  EXPECT_EQ(cache.count(), 0u);
}

TEST(ObjectBundle, SerializeDeserializeRoundTrip) {
  std::vector<ObjPtr> objs{make_val_object(1), make_val_object("two"),
                           make_dir_object({{"n", Sha1::of("x")}})};
  ObjectBundle bundle(objs);
  EXPECT_EQ(bundle.wire_size(), bundle.serialize().size());
  auto back = ObjectBundle::deserialize(bundle.serialize());
  ASSERT_TRUE(back.has_value());
  auto* typed = dynamic_cast<const ObjectBundle*>(back->get());
  ASSERT_NE(typed, nullptr);
  ASSERT_EQ(typed->objects().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(typed->objects()[i]->id, objs[i]->id);
}

TEST(ObjectBundle, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ObjectBundle::deserialize("zz").has_value());
  ObjectBundle one({make_val_object(5)});
  std::string truncated = one.serialize();
  truncated.pop_back();
  EXPECT_FALSE(ObjectBundle::deserialize(truncated).has_value());
  std::string padded = one.serialize();
  padded += "x";
  EXPECT_FALSE(ObjectBundle::deserialize(padded).has_value());
}

}  // namespace
}  // namespace flux
