// Execution through the job pipeline: bulk launch, stdio capture into the
// KVS, cancellation, exit aggregation — all via the fluent h.job() API
// (ingest -> queue -> schedule -> wexec -> KVS fold-back). One test keeps
// the deprecated direct-to-wexec shim alive for its release.
#include <gtest/gtest.h>

#include "api/job_client.hpp"
#include "modules/wexec.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

/// Submit through the fluent builder and wait for the terminal result.
Task<JobResult> run_job(Handle* h, std::string cmd, Json args,
                        std::int64_t nnodes) {
  JobHandle jh = co_await h->job()
                     .command(std::move(cmd), std::move(args))
                     .nnodes(nnodes)
                     .submit();
  JobResult r = co_await jh.wait();
  co_return r;
}

TEST(Wexec, BulkLaunchOnAllRanks) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(3);
  JobResult r = s.run(run_job(h.get(), "hostname", Json::object(), 8));
  EXPECT_EQ(r.ntasks, 8);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.state, JobState::Complete);
}

TEST(Wexec, StdioCapturedInKvs) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  JobResult r = s.run(run_job(h.get(), "hostname", Json::object(), 4));
  ASSERT_TRUE(r.success);
  const std::string base = "lwj." + std::to_string(r.id) + ".";
  s.run([](Handle* hd, std::string prefix) -> Task<void> {
    KvsClient kvs(*hd);
    for (int rk = 0; rk < 4; ++rk) {
      Json out = co_await kvs.get(prefix + std::to_string(rk) + ".stdout");
      if (out.as_array().at(0) != Json("node" + std::to_string(rk)))
        throw FluxException(Error(errc::proto, "wrong stdout"));
      Json code = co_await kvs.get(prefix + std::to_string(rk) + ".exitcode");
      if (code != Json(0))
        throw FluxException(Error(errc::proto, "nonzero exit"));
    }
  }(h.get(), base));
}

TEST(Wexec, AllocatedSubsetGetsTasks) {
  // A 3-node job on an 8-broker session: exactly the allocated ranks (from
  // job.<id>.ranks) run tasks; non-allocated ranks have no stdio entries.
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(0);
  JobResult r = s.run(run_job(h.get(), "hostname", Json::object(), 3));
  EXPECT_EQ(r.ntasks, 3);
  s.run([](Handle* hd, std::uint64_t id) -> Task<void> {
    KvsClient kvs(*hd);
    Json ranks = co_await kvs.get("job." + std::to_string(id) + ".ranks");
    if (ranks.size() != 3)
      throw FluxException(Error(errc::proto, "wrong allocation width"));
    const std::string base = "lwj." + std::to_string(id) + ".";
    for (const Json& rk : ranks.as_array())
      (void)co_await kvs.get(base + std::to_string(rk.as_int()) + ".stdout");
    // Find a rank outside the allocation; it must have no capture.
    for (std::int64_t cand = 7; cand >= 0; --cand) {
      bool allocated = false;
      for (const Json& rk : ranks.as_array())
        if (rk.as_int() == cand) allocated = true;
      if (allocated) continue;
      try {
        (void)co_await kvs.get(base + std::to_string(cand) + ".stdout");
        throw FluxException(Error(errc::proto, "unexpected entry"));
      } catch (const FluxException& e) {
        if (e.error().code != errc::noent) throw;
      }
      break;
    }
  }(h.get(), r.id));
}

TEST(Wexec, NonzeroExitCodesAggregated) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  Json args = Json::object({{"code", 3}});
  JobResult r = s.run(run_job(h.get(), "exit", std::move(args), 4));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.state, JobState::Failed);
  EXPECT_EQ(r.exits.get_int("3"), 4);
}

TEST(Wexec, UnknownCommandIs127) {
  SimSession s(SimSession::default_config(2));
  auto h = s.attach(0);
  JobResult r = s.run(run_job(h.get(), "not-a-command", Json::object(), 2));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.exits.get_int("127"), 2);
  // stderr explains the failure.
  s.run([](Handle* hd, std::uint64_t id) -> Task<void> {
    KvsClient kvs(*hd);
    Json err = co_await kvs.get("lwj." + std::to_string(id) + ".0.stderr");
    if (err.as_array().empty())
      throw FluxException(Error(errc::proto, "no stderr captured"));
  }(h.get(), r.id));
}

TEST(Wexec, JobidsMonotonicallyIncrease) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  std::vector<std::uint64_t> ids = s.run([](Handle* hd)
                                             -> Task<std::vector<std::uint64_t>> {
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 3; ++i) {
      JobHandle jh = co_await hd->job().nnodes(1).submit();
      out.push_back(jh.id());
      (void)co_await jh.wait();
    }
    co_return out;
  }(h.get()));
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_LT(ids[1], ids[2]);
}

TEST(Wexec, CancelTerminatesSpinners) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(0);
  JobResult r = s.run([](Handle* hd) -> Task<JobResult> {
    // Spinners only exit when signalled; cancel delivers SIGTERM.
    JobHandle jh = co_await hd->job().command("spin").nnodes(4).submit();
    while (co_await jh.state() != JobState::Running)
      co_await hd->sleep(std::chrono::microseconds(100));
    co_await jh.cancel();
    JobResult out = co_await jh.wait();
    co_return out;
  }(h.get()));
  EXPECT_EQ(r.state, JobState::Canceled);
  // All tasks exited 143 (128 + SIGTERM).
  EXPECT_EQ(r.exits.get_int("143"), 4);
}

TEST(Wexec, ProcessesUseKvsThroughTheirOwnHandle) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  Json args = Json::object({{"key", "fromproc.v"}, {"value", "written"}});
  JobResult r = s.run(run_job(h.get(), "kvsput", std::move(args), 1));
  EXPECT_TRUE(r.success);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json v = co_await kvs.get("fromproc.v");
    if (v != Json("written"))
      throw FluxException(Error(errc::proto, "kvsput did not stick"));
  }(h.get()));
}

TEST(Wexec, CustomRegisteredCommand) {
  modules::CommandRegistry::instance().add(
      "answer", [](modules::ProcessCtx& p) -> Task<int> {
        p.out("42");
        co_return 0;
      });
  SimSession s(SimSession::default_config(2));
  auto h = s.attach(0);
  JobResult r = s.run(run_job(h.get(), "answer", Json::object(), 2));
  EXPECT_TRUE(r.success);
  s.run([](Handle* hd, std::uint64_t id) -> Task<void> {
    KvsClient kvs(*hd);
    Json out = co_await kvs.get("lwj." + std::to_string(id) + ".1.stdout");
    if (out.as_array().at(0) != Json("42"))
      throw FluxException(Error(errc::proto, "custom command output wrong"));
  }(h.get(), r.id));
}

// The one test that keeps the deprecated direct-to-wexec shim exercised for
// its final release (everything else goes through h.job()).
TEST(Wexec, DeprecatedDirectRunShim) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Message resp = s.run(wexec_run(*h, "legacy", "hostname"));
#pragma GCC diagnostic pop
  EXPECT_EQ(resp.payload().get_int("ntasks"), 4);
  EXPECT_TRUE(resp.payload().get_bool("success"));
}

}  // namespace
}  // namespace flux
