// wexec: bulk launch, stdio capture into the KVS, signals, exit reduction.
#include <gtest/gtest.h>

#include "modules/wexec.hpp"
#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

Task<Message> run_job(Handle* h, std::string jobid, std::string cmd,
                      Json args = Json::object(), Json ranks = Json()) {
  Json payload = Json::object({{"jobid", std::move(jobid)},
                               {"cmd", std::move(cmd)},
                               {"args", std::move(args)},
                               {"ranks", std::move(ranks)}});
  Message resp = co_await h->request("wexec.run").payload(std::move(payload)).call();
  co_return resp;
}

TEST(Wexec, BulkLaunchOnAllRanks) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(3);
  Message resp = s.run(run_job(h.get(), "j1", "hostname"));
  EXPECT_EQ(resp.payload().get_int("ntasks"), 8);
  EXPECT_TRUE(resp.payload().get_bool("success"));
}

TEST(Wexec, StdioCapturedInKvs) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  s.run(run_job(h.get(), "j2", "hostname"));
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    for (int r = 0; r < 4; ++r) {
      Json out = co_await kvs.get("lwj.j2." + std::to_string(r) + ".stdout");
      if (out.as_array().at(0) != Json("node" + std::to_string(r)))
        throw FluxException(Error(errc::proto, "wrong stdout"));
      Json code = co_await kvs.get("lwj.j2." + std::to_string(r) + ".exitcode");
      if (code != Json(0))
        throw FluxException(Error(errc::proto, "nonzero exit"));
    }
  }(h.get()));
}

TEST(Wexec, RankSubsetSelection) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(0);
  Json ranks = Json::array({1, 4, 6});
  Message resp = s.run(run_job(h.get(), "j3", "hostname", Json::object(),
                               std::move(ranks)));
  EXPECT_EQ(resp.payload().get_int("ntasks"), 3);
  // Non-selected ranks must have no KVS entries.
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    (void)co_await kvs.get("lwj.j3.4.stdout");  // selected: exists
    try {
      (void)co_await kvs.get("lwj.j3.2.stdout");  // not selected
      throw FluxException(Error(errc::proto, "unexpected entry"));
    } catch (const FluxException& e) {
      if (e.error().code != errc::noent) throw;
    }
  }(h.get()));
}

TEST(Wexec, NonzeroExitCodesAggregated) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  Json args = Json::object({{"code", 3}});
  Message resp = s.run(run_job(h.get(), "j4", "exit", std::move(args)));
  EXPECT_FALSE(resp.payload().get_bool("success"));
  EXPECT_EQ(resp.payload().at("exits").get_int("3"), 4);
}

TEST(Wexec, UnknownCommandIs127) {
  SimSession s(SimSession::default_config(2));
  auto h = s.attach(0);
  Message resp = s.run(run_job(h.get(), "j5", "not-a-command"));
  EXPECT_FALSE(resp.payload().get_bool("success"));
  EXPECT_EQ(resp.payload().at("exits").get_int("127"), 2);
  // stderr explains the failure.
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json err = co_await kvs.get("lwj.j5.0.stderr");
    if (err.as_array().empty())
      throw FluxException(Error(errc::proto, "no stderr captured"));
  }(h.get()));
}

TEST(Wexec, DuplicateJobidRejected) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(0);
  // A long-running job holds the id...
  co_spawn(s.ex(), [](Handle* hd) -> Task<void> {
    Json args = Json::object({{"us", 100000}});
    Json payload = Json::object({{"jobid", "dup"},
                                 {"cmd", "sleep"},
                                 {"args", std::move(args)},
                                 {"ranks", Json()}});
    (void)co_await hd->request("wexec.run").payload(std::move(payload)).send();
  }(h.get()), "sleeper");
  s.ex().run_for(std::chrono::milliseconds(1));
  // ...so a second run with the same id fails.
  auto h2 = s.attach(1);
  bool rejected = false;
  co_spawn(s.ex(), [](Handle* hd, bool* out) -> Task<void> {
    try {
      (void)co_await run_job(hd, "dup", "hostname");
    } catch (const FluxException& e) {
      *out = (e.error().code == errc::exist);
    }
  }(h2.get(), &rejected), "dup");
  s.ex().run_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(rejected);
  s.ex().run();  // drain the sleeper
}

TEST(Wexec, SignalTerminatesSpinners) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(0);
  Message resp = s.run([](Handle* hd) -> Task<Message> {
    // Launch spinners that only exit when signalled.
    Json payload = Json::object({{"jobid", "spin1"},
                                 {"cmd", "spin"},
                                 {"args", Json::object()},
                                 {"ranks", Json()}});
    auto pending = hd->request("wexec.run").payload(std::move(payload)).send();
    co_await hd->sleep(std::chrono::milliseconds(1));
    Json kill = Json::object({{"jobid", "spin1"}, {"signum", 15}});
    co_await hd->request("wexec.kill").payload(std::move(kill)).call();
    Message done = co_await pending;
    Handle::check(done);
    co_return done;
  }(h.get()));
  // All tasks exited 143 (128 + SIGTERM).
  EXPECT_EQ(resp.payload().at("exits").get_int("143"), 4);
}

TEST(Wexec, ProcessesUseKvsThroughTheirOwnHandle) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  Json args = Json::object({{"key", "fromproc.v"}, {"value", "written"}});
  Message resp = s.run(run_job(h.get(), "j6", "kvsput", std::move(args),
                               Json::array({2})));
  EXPECT_TRUE(resp.payload().get_bool("success"));
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json v = co_await kvs.get("fromproc.v");
    if (v != Json("written"))
      throw FluxException(Error(errc::proto, "kvsput did not stick"));
  }(h.get()));
}

TEST(Wexec, CustomRegisteredCommand) {
  modules::CommandRegistry::instance().add(
      "answer", [](modules::ProcessCtx& p) -> Task<int> {
        p.out("42");
        co_return 0;
      });
  SimSession s(SimSession::default_config(2));
  auto h = s.attach(0);
  Message resp = s.run(run_job(h.get(), "j7", "answer"));
  EXPECT_TRUE(resp.payload().get_bool("success"));
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    Json out = co_await kvs.get("lwj.j7.1.stdout");
    if (out.as_array().at(0) != Json("42"))
      throw FluxException(Error(errc::proto, "custom command output wrong"));
  }(h.get()));
}

}  // namespace
}  // namespace flux
